package scenario

import (
	"pim/internal/faults"
	"pim/internal/telemetry"
)

// Deployment is the uniform surface every protocol deployment exposes: the
// fault layer (internal/faults, internal/script, the recovery experiment)
// kills and revives routers through it, and the telemetry consumers read the
// event bus through it, without knowing which protocol is running.
type Deployment interface {
	// Crash fail-stops router i: all interfaces down, engine and IGMP
	// querier stopped with their soft state discarded.
	Crash(i int)
	// Restart revives router i empty; state rebuilds from soft-state
	// refresh only.
	Restart(i int)
	// Stop shuts down every engine and querier of the deployment.
	Stop()
	// TotalState sums forwarding/tree/membership entries across routers.
	TotalState() int
	// StateAt returns router i's forwarding/tree entry count.
	StateAt(i int) int
	// Telemetry returns the event bus the deployment publishes to (nil
	// when deployed without one).
	Telemetry() *telemetry.Bus
	// TelemetryLanes returns the per-shard buses of a sharded deployment
	// (nil when unsharded or deployed without telemetry).
	TelemetryLanes() []*telemetry.Bus
	// Checker returns the online invariant checker (nil unless enabled
	// with WithInvariantChecker, and nil on sharded deployments, which
	// run one checker per lane — use Violations there).
	Checker() *telemetry.Checker
	// Violations aggregates invariant-checker findings across every lane,
	// sorted by time then router (empty without WithInvariantChecker).
	Violations() []telemetry.Violation
}

// lifecycles is the seam the generic fault verbs below operate through: each
// deployment lists the engines running on one router, in stop order. The
// per-protocol deployments differ only here; Crash/Restart/Stop are written
// once against it.
type lifecycles interface {
	engines(i int) []faults.Lifecycle
	routers() int
	sim() *Sim
}

func crashAt(d lifecycles, i int) {
	s := d.sim()
	faults.CrashRouter(s.Net, s.Routers[i], d.engines(i)...)
}

func restartAt(d lifecycles, i int) {
	s := d.sim()
	faults.RestartRouter(s.Net, s.Routers[i], d.engines(i)...)
}

func stopAll(d lifecycles) {
	for i := 0; i < d.routers(); i++ {
		for _, e := range d.engines(i) {
			e.Stop()
		}
	}
}

// --- PIM sparse mode ---

func (d *PIMDeployment) engines(i int) []faults.Lifecycle {
	return []faults.Lifecycle{d.Routers[i], d.Queriers[i]}
}
func (d *PIMDeployment) routers() int { return len(d.Routers) }
func (d *PIMDeployment) sim() *Sim    { return d.Sim }

// Crash fail-stops router i (see Deployment).
func (d *PIMDeployment) Crash(i int) { crashAt(d, i) }

// Restart revives router i (see Deployment).
func (d *PIMDeployment) Restart(i int) { restartAt(d, i) }

// Stop shuts down every engine and querier.
func (d *PIMDeployment) Stop() { stopAll(d) }

// StateAt returns router i's forwarding entry count.
func (d *PIMDeployment) StateAt(i int) int { return d.Routers[i].StateCount() }

// --- PIM dense mode ---

func (d *PIMDMDeployment) engines(i int) []faults.Lifecycle {
	return []faults.Lifecycle{d.Routers[i], d.Queriers[i]}
}
func (d *PIMDMDeployment) routers() int { return len(d.Routers) }
func (d *PIMDMDeployment) sim() *Sim    { return d.Sim }

// Crash fail-stops router i (see Deployment).
func (d *PIMDMDeployment) Crash(i int) { crashAt(d, i) }

// Restart revives router i (see Deployment).
func (d *PIMDMDeployment) Restart(i int) { restartAt(d, i) }

// Stop shuts down every engine and querier.
func (d *PIMDMDeployment) Stop() { stopAll(d) }

// StateAt returns router i's forwarding entry count.
func (d *PIMDMDeployment) StateAt(i int) int { return d.Routers[i].StateCount() }

// --- DVMRP ---

func (d *DVMRPDeployment) engines(i int) []faults.Lifecycle {
	return []faults.Lifecycle{d.Routers[i], d.Queriers[i]}
}
func (d *DVMRPDeployment) routers() int { return len(d.Routers) }
func (d *DVMRPDeployment) sim() *Sim    { return d.Sim }

// Crash fail-stops router i (see Deployment).
func (d *DVMRPDeployment) Crash(i int) { crashAt(d, i) }

// Restart revives router i (see Deployment).
func (d *DVMRPDeployment) Restart(i int) { restartAt(d, i) }

// Stop shuts down every engine and querier.
func (d *DVMRPDeployment) Stop() { stopAll(d) }

// StateAt returns router i's forwarding entry count.
func (d *DVMRPDeployment) StateAt(i int) int { return d.Routers[i].StateCount() }

// --- CBT ---

func (d *CBTDeployment) engines(i int) []faults.Lifecycle {
	return []faults.Lifecycle{d.Routers[i], d.Queriers[i]}
}
func (d *CBTDeployment) routers() int { return len(d.Routers) }
func (d *CBTDeployment) sim() *Sim    { return d.Sim }

// Crash fail-stops router i (see Deployment).
func (d *CBTDeployment) Crash(i int) { crashAt(d, i) }

// Restart revives router i (see Deployment).
func (d *CBTDeployment) Restart(i int) { restartAt(d, i) }

// Stop shuts down every engine and querier.
func (d *CBTDeployment) Stop() { stopAll(d) }

// StateAt returns router i's tree entry count.
func (d *CBTDeployment) StateAt(i int) int { return d.Routers[i].StateCount() }

// --- MOSPF ---

func (d *MOSPFDeployment) engines(i int) []faults.Lifecycle {
	return []faults.Lifecycle{d.Routers[i], d.Queriers[i]}
}
func (d *MOSPFDeployment) routers() int { return len(d.Routers) }
func (d *MOSPFDeployment) sim() *Sim    { return d.Sim }

// Crash fail-stops router i (see Deployment).
func (d *MOSPFDeployment) Crash(i int) { crashAt(d, i) }

// Restart revives router i (see Deployment).
func (d *MOSPFDeployment) Restart(i int) { restartAt(d, i) }

// Stop shuts down every engine and querier.
func (d *MOSPFDeployment) Stop() { stopAll(d) }

// StateAt returns router i's cache + membership entry count.
func (d *MOSPFDeployment) StateAt(i int) int { return d.Routers[i].StateCount() }
