package scenario

import (
	"pim/internal/addr"
	"pim/internal/border"
	"pim/internal/core"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/pimdm"
)

// InteropDeployment is a mixed sparse/dense internet (§4): routers in dense
// regions run PIM dense mode, the rest run PIM sparse mode, and every
// sparse router adjacent to a dense region becomes a border router that
// splices the region onto the sparse trees.
type InteropDeployment struct {
	Sim *Sim
	// Sparse[i], Dense[i], Borders[i] — exactly one is non-nil per router.
	Sparse   []*core.Router
	Dense    []*pimdm.Router
	Borders  []*border.BorderRouter
	Queriers []*igmp.Querier
}

// DeployInterop starts the mixed deployment. denseRouters marks the routers
// inside dense-mode regions ("links should be configurable to operate in
// dense mode or in sparse mode", §4); the split is derived per interface:
// a sparse router's interfaces toward dense neighbors become its dense-side
// (border) interfaces.
func (s *Sim) DeployInterop(sparseCfg core.Config, denseCfg pimdm.Config, denseRouters map[int]bool) *InteropDeployment {
	d := &InteropDeployment{
		Sim:     s,
		Sparse:  make([]*core.Router, len(s.Routers)),
		Dense:   make([]*pimdm.Router, len(s.Routers)),
		Borders: make([]*border.BorderRouter, len(s.Routers)),
	}
	for i, nd := range s.Routers {
		var join func(*netsim.Iface, addr.IP)
		var leave func(*netsim.Iface, addr.IP)
		var learnRP func(addr.IP, []addr.IP)
		switch {
		case denseRouters[i]:
			r := pimdm.New(nd, denseCfg, s.UnicastFor(i))
			r.Start()
			d.Dense[i] = r
			join, leave = r.LocalJoin, r.LocalLeave
		case s.denseFacingIfaces(i, denseRouters) != nil:
			b := border.New(nd, sparseCfg, denseCfg, s.UnicastFor(i),
				s.denseFacingIfaces(i, denseRouters))
			b.Start()
			d.Borders[i] = b
			join, leave = b.LocalJoin, b.LocalLeave
			learnRP = b.Sparse.LearnRPMap
		default:
			r := core.New(nd, sparseCfg, s.UnicastFor(i))
			r.Start()
			d.Sparse[i] = r
			join, leave = r.LocalJoin, r.LocalLeave
			learnRP = r.LearnRPMap
		}
		q := igmp.NewQuerier(nd)
		q.OnJoin = join
		q.OnLeave = leave
		if learnRP != nil {
			q.OnRPMap = learnRP
		}
		q.Start()
		d.Queriers = append(d.Queriers, q)
	}
	return d
}

// denseFacingIfaces returns router i's interfaces whose links attach a
// dense-region router, or nil if none (then i is a plain sparse router).
func (s *Sim) denseFacingIfaces(i int, denseRouters map[int]bool) []*netsim.Iface {
	if denseRouters[i] {
		return nil
	}
	var out []*netsim.Iface
	for _, ifc := range s.Routers[i].Ifaces {
		if ifc.Link == nil {
			continue
		}
		for _, peer := range ifc.Link.Ifaces {
			if peer == ifc {
				continue
			}
			for j, nd := range s.Routers {
				if nd == peer.Node && denseRouters[j] {
					out = append(out, ifc)
				}
			}
		}
	}
	return out
}

// TotalState sums forwarding entries across every protocol instance.
func (d *InteropDeployment) TotalState() int {
	total := 0
	for i := range d.Sim.Routers {
		switch {
		case d.Sparse[i] != nil:
			total += d.Sparse[i].StateCount()
		case d.Dense[i] != nil:
			total += d.Dense[i].StateCount()
		case d.Borders[i] != nil:
			total += d.Borders[i].StateCount()
		}
	}
	return total
}
