// Package scenario assembles runnable simulations: it maps a topology.Graph
// onto netsim routers and links, hangs stub LANs with IGMP hosts off chosen
// routers, plugs in one of the three unicast routing substrates, and deploys
// a multicast protocol on every router. The experiment harnesses
// (cmd/pimsim, bench_test.go) and the examples all build on it.
//
// Address plan (matches unicast.LinkPrefix's /24-per-link convention):
//
//	backbone link i:  10.(200+i/256).(i%256).0/24, endpoints .1 and .2
//	host LAN at r:    10.100.r.0/24, router at .254, hosts at .1, .2, ...
package scenario

import (
	"encoding/binary"
	"fmt"

	"pim/internal/addr"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/topology"
	"pim/internal/unicast"
)

// UnicastMode selects the routing substrate beneath the multicast protocol.
type UnicastMode int

const (
	// UseOracle computes all tables from global knowledge (default).
	UseOracle UnicastMode = iota
	// UseDV runs the RIP-like distance-vector protocol on every router.
	UseDV
	// UseLS runs the OSPF-like link-state protocol on every router.
	UseLS
)

// DelayUnit converts the dimensionless edge delays of topology.Graph into
// simulated time.
const DelayUnit = netsim.Millisecond

// Sim is a wired simulation.
type Sim struct {
	Net   *netsim.Network
	Graph *topology.Graph
	// Routers[i] is the router for graph node i.
	Routers []*netsim.Node
	// EdgeLinks[e] is the netsim link realizing graph edge e.
	EdgeLinks []*netsim.Link
	// HostLANs[i] is router i's stub LAN (nil until a host is added).
	HostLANs []*netsim.Link
	// Hosts[i] are the IGMP hosts attached to router i.
	Hosts [][]*igmp.Host

	Mode   UnicastMode
	oracle *unicast.Oracle
	dv     []*unicast.DV
	ls     []*unicast.LS

	// owner maps every node back to the graph vertex whose router it is or
	// hangs off (hosts and LAN anchors map to their router), so sharding can
	// place entire stub LANs with their router.
	owner map[*netsim.Node]int
	// shardAsn is the topology partition in effect after AutoShard, indexed
	// by graph vertex; nil while unsharded.
	shardAsn []int
}

// Build wires the graph into a network. Unicast routing is attached by
// FinishUnicast after hosts are added (the oracle needs the final
// interface set).
func Build(g *topology.Graph) *Sim {
	net := netsim.NewNetwork()
	s := &Sim{
		Net:       net,
		Graph:     g,
		Routers:   make([]*netsim.Node, g.N()),
		EdgeLinks: make([]*netsim.Link, g.M()),
		HostLANs:  make([]*netsim.Link, g.N()),
		Hosts:     make([][]*igmp.Host, g.N()),
		owner:     make(map[*netsim.Node]int),
	}
	for i := range s.Routers {
		s.Routers[i] = net.AddNode(fmt.Sprintf("r%d", i))
		s.owner[s.Routers[i]] = i
	}
	for ei, e := range g.Edges() {
		a := net.AddIface(s.Routers[e.A], linkAddr(ei, 1))
		b := net.AddIface(s.Routers[e.B], linkAddr(ei, 2))
		s.EdgeLinks[ei] = net.Connect(a, b, netsim.Time(e.Delay)*DelayUnit)
	}
	return s
}

func linkAddr(edge, side int) addr.IP {
	return addr.V4(10, byte(200+edge/256), byte(edge%256), byte(side))
}

// HostLANAddr returns the address of the h-th host on router r's stub LAN.
func HostLANAddr(r, h int) addr.IP { return addr.V4(10, 100, byte(r), byte(h+1)) }

// RouterLANAddr returns router r's address on its stub LAN.
func RouterLANAddr(r int) addr.IP { return addr.V4(10, 100, byte(r), 254) }

// AddHost attaches a new IGMP host to router r's stub LAN, creating the LAN
// on first use. Must be called before FinishUnicast.
func (s *Sim) AddHost(r int) *igmp.Host {
	nd := s.Net.AddNode(fmt.Sprintf("h%d.%d", r, len(s.Hosts[r])))
	s.placeWithRouter(nd, r)
	hif := s.Net.AddIface(nd, HostLANAddr(r, len(s.Hosts[r])))
	if s.HostLANs[r] == nil {
		rif := s.Net.AddIface(s.Routers[r], RouterLANAddr(r))
		// A third, always-silent interface makes the stub a true LAN so
		// §3.7 semantics (multicast join/prune visibility) apply uniformly.
		anchorNode := s.Net.AddNode(fmt.Sprintf("lan%d", r))
		s.placeWithRouter(anchorNode, r)
		anchor := s.Net.AddIface(anchorNode, 0)
		s.HostLANs[r] = s.Net.ConnectLAN(DelayUnit, rif, hif, anchor)
	} else {
		// Join the existing LAN.
		lan := s.HostLANs[r]
		hif.Link = lan
		lan.Ifaces = append(lan.Ifaces, hif)
	}
	h := igmp.NewHost(nd, hif)
	s.Hosts[r] = append(s.Hosts[r], h)
	return h
}

// placeWithRouter records that nd hangs off graph vertex r and, when the
// network is already sharded, pins it to r's shard so stub LANs never span
// shard boundaries.
func (s *Sim) placeWithRouter(nd *netsim.Node, r int) {
	s.owner[nd] = r
	if s.shardAsn != nil {
		s.Net.SetNodeShard(nd, s.shardAsn[r])
	}
}

// AutoShard partitions the topology over the configured shard count
// (netsim.Shards()) and switches the network to sharded execution. See
// AutoShardN for constraints.
func (s *Sim) AutoShard() { s.AutoShardN(netsim.Shards()) }

// AutoShardN partitions the topology into k shards (topology.Partition:
// greedy min-cut preferring high-delay links as boundaries) and switches the
// network to sharded parallel execution. Hosts and LAN anchors — existing
// and future — are placed on their router's shard, so only backbone
// point-to-point links ever cross shards. Call after Build and before any
// events are scheduled (i.e. before FinishUnicast starts DV/LS); a k of 1
// or less leaves the network sequential. The partition is a deterministic
// function of the graph and k, which the shard-determinism gates rely on.
func (s *Sim) AutoShardN(k int) {
	if k <= 1 || s.Net.Sharded() {
		return
	}
	if k > s.Graph.N() {
		k = s.Graph.N()
	}
	s.shardAsn = topology.Partition(s.Graph, k)
	s.Net.Shard(k, func(nd *netsim.Node) int {
		r, ok := s.owner[nd]
		if !ok {
			panic("scenario: node with unknown owner at shard time: " + nd.Name)
		}
		return s.shardAsn[r]
	})
}

// FinishUnicast attaches the chosen unicast substrate. For DV and LS the
// caller must afterwards run the scheduler long enough to converge (3×
// period is ample on these diameters).
func (s *Sim) FinishUnicast(mode UnicastMode) {
	s.Mode = mode
	switch mode {
	case UseOracle:
		s.oracle = unicast.NewOracle(s.Net)
	case UseDV:
		for _, nd := range s.Routers {
			d := unicast.NewDV(nd)
			d.Start()
			s.dv = append(s.dv, d)
		}
	case UseLS:
		for _, nd := range s.Routers {
			l := unicast.NewLS(nd)
			l.Start()
			s.ls = append(s.ls, l)
		}
	}
}

// UnicastFor returns router i's unicast routing view.
func (s *Sim) UnicastFor(i int) unicast.Router {
	switch s.Mode {
	case UseDV:
		return s.dv[i].Table()
	case UseLS:
		return s.ls[i].Table()
	default:
		return s.oracle.RouterFor(s.Routers[i])
	}
}

// ConvergenceTime returns how long the substrate needs before multicast
// protocols should start.
func (s *Sim) ConvergenceTime() netsim.Time {
	switch s.Mode {
	case UseDV:
		return 3 * unicast.DVDefaultPeriod
	case UseLS:
		return 2 * unicast.LSDefaultRefresh
	default:
		return 0
	}
}

// RouterAddr returns router i's primary (first-interface) address, used as
// its identifier and as an RP address when i hosts a rendezvous point.
func (s *Sim) RouterAddr(i int) addr.IP { return s.Routers[i].Addr() }

// SendData injects one multicast data packet from the host onto its LAN.
// The first eight payload bytes carry the send timestamp so receivers can
// measure delivery latency (see Latency).
func SendData(h *igmp.Host, g addr.IP, size int) {
	if size < 8 {
		size = 8
	}
	payload := make([]byte, size)
	binary.BigEndian.PutUint64(payload, uint64(h.Node.Sched().Now()))
	pkt := packet.New(h.Iface.Addr, g, packet.ProtoUDP, payload)
	h.Node.Send(h.Iface, pkt, 0)
}

// Latency extracts the one-way delay of a data packet sent with SendData.
func Latency(now netsim.Time, pkt *packet.Packet) (netsim.Time, bool) {
	if len(pkt.Payload) < 8 {
		return 0, false
	}
	sent := netsim.Time(binary.BigEndian.Uint64(pkt.Payload))
	if sent < 0 || sent > now {
		return 0, false
	}
	return now - sent, true
}

// Run advances the simulation by d.
func (s *Sim) Run(d netsim.Time) { s.Net.Sched.RunUntil(s.Net.Sched.Now() + d) }
