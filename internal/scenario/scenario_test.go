package scenario

import (
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/topology"
)

func square() *topology.Graph {
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 2)
	return g
}

func TestBuildWiring(t *testing.T) {
	g := square()
	sim := Build(g)
	if len(sim.Routers) != 4 || len(sim.EdgeLinks) != 4 {
		t.Fatalf("routers=%d links=%d", len(sim.Routers), len(sim.EdgeLinks))
	}
	// Each router has one interface per incident edge, in edge order.
	for i, nd := range sim.Routers {
		if got, want := len(nd.Ifaces), g.Degree(i); got != want {
			t.Errorf("router %d has %d ifaces, want %d", i, got, want)
		}
	}
	// Link delays scale by DelayUnit.
	if sim.EdgeLinks[1].Delay != 2*DelayUnit {
		t.Errorf("edge 1 delay = %v", sim.EdgeLinks[1].Delay)
	}
	// Addressing: distinct /24 per link.
	seen := map[addr.Prefix]bool{}
	for _, l := range sim.EdgeLinks {
		p := addr.MustPrefix(l.Ifaces[0].Addr, 24)
		if seen[p] {
			t.Errorf("duplicate link prefix %v", p)
		}
		seen[p] = true
		for _, ifc := range l.Ifaces {
			if !p.Contains(ifc.Addr) {
				t.Errorf("iface %v outside its link prefix %v", ifc.Addr, p)
			}
		}
	}
}

func TestAddHostCreatesLANOnceAndGrows(t *testing.T) {
	sim := Build(square())
	h1 := sim.AddHost(2)
	h2 := sim.AddHost(2)
	if sim.HostLANs[2] == nil {
		t.Fatal("no host LAN")
	}
	if h1.Iface.Link != sim.HostLANs[2] || h2.Iface.Link != sim.HostLANs[2] {
		t.Error("hosts not on the shared LAN")
	}
	if h1.Iface.Addr == h2.Iface.Addr {
		t.Error("duplicate host addresses")
	}
	if !sim.HostLANs[2].IsLAN() {
		t.Error("stub should be a true multi-access LAN")
	}
	if len(sim.Hosts[2]) != 2 {
		t.Errorf("Hosts[2] = %d", len(sim.Hosts[2]))
	}
}

func TestUnicastForAllModes(t *testing.T) {
	for _, mode := range []UnicastMode{UseOracle, UseDV, UseLS} {
		sim := Build(square())
		sim.AddHost(0)
		sim.AddHost(2)
		sim.FinishUnicast(mode)
		sim.Run(sim.ConvergenceTime())
		uni := sim.UnicastFor(0)
		if uni == nil {
			t.Fatalf("mode %d: nil unicast view", mode)
		}
		if _, ok := uni.Lookup(HostLANAddr(2, 0)); !ok {
			t.Errorf("mode %d: router 0 has no route to router 2's host LAN", mode)
		}
	}
}

func TestSendDataCarriesTimestamp(t *testing.T) {
	sim := Build(square())
	h := sim.AddHost(0)
	sim.FinishUnicast(UseOracle)
	var got *packet.Packet
	sim.Routers[0].Handle(packet.ProtoUDP, netsim.HandlerFunc(
		func(in *netsim.Iface, pkt *packet.Packet) { got = pkt }))
	sim.Run(50 * netsim.Millisecond)
	SendData(h, addr.GroupForIndex(0), 4) // below 8: padded
	sim.Run(50 * netsim.Millisecond)
	if got == nil {
		t.Fatal("no packet at router")
	}
	if len(got.Payload) < 8 {
		t.Fatalf("payload %d bytes", len(got.Payload))
	}
	d, ok := Latency(sim.Net.Sched.Now(), got)
	if !ok || d <= 0 || d > 100*netsim.Millisecond {
		t.Errorf("latency = %v, %v", d, ok)
	}
}

func TestLatencyRejectsGarbage(t *testing.T) {
	if _, ok := Latency(100, &packet.Packet{Payload: []byte{1, 2}}); ok {
		t.Error("short payload accepted")
	}
	// Future timestamp: rejected.
	p := &packet.Packet{Payload: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}}
	if _, ok := Latency(100, p); ok {
		t.Error("future timestamp accepted")
	}
}

// TestDeterminism: two identical simulations produce byte-identical
// statistics — the property all experiment reproducibility rests on.
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int) {
		g := topology.New(5)
		for i := 0; i < 4; i++ {
			g.AddEdge(i, i+1, 1)
		}
		g.AddEdge(0, 4, 3)
		sim := Build(g)
		r := sim.AddHost(0)
		s := sim.AddHost(3)
		sim.FinishUnicast(UseOracle)
		group := addr.GroupForIndex(0)
		dep := sim.Deploy(SparseMode, WithRPMapping(map[addr.IP][]addr.IP{group: {sim.RouterAddr(2)}}))
		sim.Run(2 * netsim.Second)
		r.Join(group)
		sim.Run(2 * netsim.Second)
		for i := 0; i < 10; i++ {
			SendData(s, group, 100)
			sim.Run(700 * netsim.Millisecond)
		}
		sim.Run(120 * netsim.Second)
		return sim.Net.Stats.Totals.DataPackets + sim.Net.Stats.Totals.ControlPackets,
			sim.Net.Stats.Totals.DataBytes + sim.Net.Stats.Totals.ControlBytes,
			dep.TotalState()
	}
	p1, b1, s1 := run()
	p2, b2, s2 := run()
	if p1 != p2 || b1 != b2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", p1, b1, s1, p2, b2, s2)
	}
	if p1 == 0 {
		t.Fatal("empty run")
	}
}

func TestDeploymentAggregates(t *testing.T) {
	sim := Build(square())
	h := sim.AddHost(0)
	sim.FinishUnicast(UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.Deploy(SparseMode, WithRPMapping(map[addr.IP][]addr.IP{group: {sim.RouterAddr(2)}})).(*PIMDeployment)
	sim.Run(2 * netsim.Second)
	h.Join(group)
	sim.Run(2 * netsim.Second)
	if dep.TotalState() == 0 {
		t.Error("no aggregate state")
	}
	if dep.ControlMessages() == 0 {
		t.Error("no aggregate control messages")
	}
}

// TestGarbageTrafficNeverCrashesRouters blasts random payloads with every
// protocol number at a running PIM deployment: routers must ignore or
// error-count them, never panic, and the legitimate tree must keep working.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(31)) }

func TestGarbageTrafficNeverCrashesRouters(t *testing.T) {
	sim := Build(square())
	h := sim.AddHost(0)
	sender := sim.AddHost(2)
	sim.FinishUnicast(UseOracle)
	group := addr.GroupForIndex(0)
	sim.Deploy(SparseMode, WithRPMapping(map[addr.IP][]addr.IP{group: {sim.RouterAddr(2)}}))
	sim.Run(2 * netsim.Second)
	h.Join(group)
	sim.Run(2 * netsim.Second)

	rng := newTestRand()
	protos := []byte{packet.ProtoIGMP, packet.ProtoPIM, packet.ProtoPIMData,
		packet.ProtoUDP, packet.ProtoDVMRP, packet.ProtoCBT,
		packet.ProtoRIPSim, packet.ProtoLSSim, packet.ProtoMOSPF}
	for i := 0; i < 500; i++ {
		payload := make([]byte, rng.Intn(48))
		rng.Read(payload)
		nd := sim.Routers[rng.Intn(len(sim.Routers))]
		ifc := nd.Ifaces[rng.Intn(len(nd.Ifaces))]
		dsts := []addr.IP{addr.AllRouters, group, ifc.Addr, addr.V4(1, 2, 3, 4)}
		pkt := packet.New(addr.IP(rng.Uint32()), dsts[rng.Intn(len(dsts))],
			protos[rng.Intn(len(protos))], payload)
		pkt.TTL = byte(1 + rng.Intn(64))
		nd.LocalSend(ifc, pkt)
		sim.Run(10 * netsim.Millisecond)
	}
	// The tree still works after the garbage storm.
	SendData(sender, group, 64)
	sim.Run(netsim.Second)
	if h.Received[group] == 0 {
		t.Fatal("legitimate delivery broken after garbage traffic")
	}
}
