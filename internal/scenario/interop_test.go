package scenario

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/core"
	"pim/internal/netsim"
	"pim/internal/pimdm"
	"pim/internal/topology"
)

// TestDeployInterop: a line internet with a dense tail — sparse 0-1,
// border 2, dense 3-4. Members on both ends exchange traffic.
func TestDeployInterop(t *testing.T) {
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := Build(g)
	sparseHost := sim.AddHost(0)
	denseHost := sim.AddHost(4)
	sim.FinishUnicast(UseOracle)
	group := addr.GroupForIndex(0)
	rp := sim.RouterAddr(0)
	dep := sim.DeployInterop(
		core.Config{RPMapping: map[addr.IP][]addr.IP{group: {rp}}},
		pimdm.Config{PruneHoldTime: 600 * netsim.Second},
		map[int]bool{3: true, 4: true},
	)
	// Role assignment: 0,1 sparse; 2 border; 3,4 dense.
	if dep.Sparse[0] == nil || dep.Sparse[1] == nil {
		t.Fatal("routers 0/1 should be sparse")
	}
	if dep.Borders[2] == nil {
		t.Fatal("router 2 should be a border router")
	}
	if dep.Dense[3] == nil || dep.Dense[4] == nil {
		t.Fatal("routers 3/4 should be dense")
	}
	sim.Run(2 * netsim.Second)
	sparseHost.Join(group)
	denseHost.Join(group)
	sim.Run(3 * netsim.Second)

	// Dense-side member pulls sparse-side data.
	for i := 0; i < 5; i++ {
		SendData(sparseHost, group, 64)
		sim.Run(netsim.Second)
	}
	if got := denseHost.Received[group]; got < 4 {
		t.Fatalf("dense member got %d of 5 sparse packets", got)
	}
	// Sparse-side member hears the dense-region source.
	for i := 0; i < 5; i++ {
		SendData(denseHost, group, 64)
		sim.Run(netsim.Second)
	}
	if got := sparseHost.Received[group]; got < 4 {
		t.Fatalf("sparse member got %d of 5 dense packets", got)
	}
	if dep.TotalState() == 0 {
		t.Error("no state anywhere")
	}
}

// TestDeployInteropAllSparse degenerates to a plain PIM deployment when no
// dense routers are marked.
func TestDeployInteropAllSparse(t *testing.T) {
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := Build(g)
	h := sim.AddHost(0)
	sim.FinishUnicast(UseOracle)
	group := addr.GroupForIndex(0)
	dep := sim.DeployInterop(
		core.Config{RPMapping: map[addr.IP][]addr.IP{group: {sim.RouterAddr(2)}}},
		pimdm.Config{}, nil,
	)
	for i := range sim.Routers {
		if dep.Sparse[i] == nil {
			t.Fatalf("router %d not sparse in all-sparse deployment", i)
		}
	}
	sim.Run(2 * netsim.Second)
	h.Join(group)
	sim.Run(2 * netsim.Second)
	if dep.Sparse[1].MFIB.Wildcard(group) == nil {
		t.Error("tree did not form")
	}
}
