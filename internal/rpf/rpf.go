// Package rpf caches reverse-path-forwarding resolutions against the
// unicast routing table.
//
// Every multicast protocol in this repository anchors its behaviour to an
// RPF check (PIM's §3.2 "the interface used to reach the source/RP", DVMRP
// and PIM-DM's per-packet reverse-path test, CBT's path toward the core,
// MOSPF's source-rooted tree side): in steady state the same few
// destinations — sources, RPs, cores — are resolved over and over, once per
// data packet or Join/Prune refresh, while the underlying routes change
// rarely. The cache turns those repeated longest-prefix matches into one
// map probe guarded by one integer compare.
//
// Correctness is anchored to the paper's §3.8: a unicast route change must
// be reflected by the very next RPF check. The unicast Table bumps its
// generation counter on every mutation (Set/Delete/Replace/NotifyChanged),
// and the cache discards everything the moment the observed generation
// differs from the one its entries were computed at — so even a lookup
// performed mid-batch, after a Set but before NotifyChanged has fired the
// OnChange listeners, can never be served a stale result. Negative results
// (no route) are cached too: a source behind a partition would otherwise
// cost a full table miss per packet.
package rpf

import (
	"pim/internal/addr"
	"pim/internal/fastpath"
	"pim/internal/unicast"
)

// result remembers one resolution, including "no route".
type result struct {
	route unicast.Route
	ok    bool
}

// Cache is a generation-validated memo of Router.Lookup results. It is not
// safe for concurrent use; each simulated router owns one, and the
// simulator is single-threaded per scenario.
type Cache struct {
	uni unicast.Router
	gen uint64 // table generation the entries were resolved at
	m   map[addr.IP]result
}

// New wraps a unicast router with a fresh cache.
func New(uni unicast.Router) *Cache {
	return &Cache{uni: uni, m: make(map[addr.IP]result)}
}

// Lookup resolves the RPF route toward dst. With the fast path enabled it
// answers from the cache when the table generation is unchanged; otherwise
// (or on the reference path) it defers to the underlying router.
func (c *Cache) Lookup(dst addr.IP) (unicast.Route, bool) {
	if !fastpath.Enabled() {
		return c.uni.Lookup(dst)
	}
	if g := c.uni.Gen(); g != c.gen {
		clear(c.m)
		c.gen = g
	}
	if r, ok := c.m[dst]; ok {
		return r.route, r.ok
	}
	rt, ok := c.uni.Lookup(dst)
	c.m[dst] = result{rt, ok}
	return rt, ok
}

// Router returns the underlying unicast router, for callers that need the
// raw interface (e.g. to register OnChange listeners).
func (c *Cache) Router() unicast.Router { return c.uni }
