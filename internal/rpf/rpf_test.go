package rpf

import (
	"math/rand"
	"testing"

	"pim/internal/addr"
	"pim/internal/fastpath"
	"pim/internal/unicast"
)

func reachable(metric int64) unicast.Route {
	return unicast.Route{NextHop: addr.V4(10, 0, 0, byte(metric)), Metric: metric}
}

// TestNeverServesStaleAfterRouteChange is the generation-invalidation test:
// any table mutation — including one that has not yet fired NotifyChanged —
// must be visible to the very next cached lookup (§3.8 semantics).
func TestNeverServesStaleAfterRouteChange(t *testing.T) {
	tb := &unicast.Table{}
	p := addr.MustPrefix(addr.V4(10, 1, 0, 0), 16)
	dst := addr.V4(10, 1, 2, 3)
	c := New(tb)

	tb.Set(p, reachable(1))
	if r, ok := c.Lookup(dst); !ok || r.Metric != 1 {
		t.Fatalf("initial = %+v, %v", r, ok)
	}
	// Mutate WITHOUT NotifyChanged: mid-batch lookups must already see it.
	tb.Set(p, reachable(2))
	if r, ok := c.Lookup(dst); !ok || r.Metric != 2 {
		t.Fatalf("after Set = %+v, %v (stale cache served)", r, ok)
	}
	tb.Delete(p)
	if _, ok := c.Lookup(dst); ok {
		t.Fatal("after Delete: stale positive served")
	}
	// Negative result is cached; route appearing must invalidate it.
	tb.Set(p, reachable(3))
	if r, ok := c.Lookup(dst); !ok || r.Metric != 3 {
		t.Fatalf("after re-add = %+v, %v (stale negative served)", r, ok)
	}
	tb.Replace(map[addr.Prefix]unicast.Route{p: reachable(4)})
	if r, ok := c.Lookup(dst); !ok || r.Metric != 4 {
		t.Fatalf("after Replace = %+v, %v", r, ok)
	}
	tb.NotifyChanged()
	if r, ok := c.Lookup(dst); !ok || r.Metric != 4 {
		t.Fatalf("after NotifyChanged = %+v, %v", r, ok)
	}
}

// TestDifferentialAgainstDirectLookup drives random mutations and probes,
// checking the cache is transparent: identical to uncached Router.Lookup.
func TestDifferentialAgainstDirectLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := &unicast.Table{}
	c := New(tb)
	prefixes := make([]addr.Prefix, 16)
	for i := range prefixes {
		prefixes[i] = addr.MustPrefix(addr.V4(10, byte(i), 0, 0), 16)
	}
	for step := 0; step < 2000; step++ {
		p := prefixes[rng.Intn(len(prefixes))]
		switch rng.Intn(4) {
		case 0:
			tb.Delete(p)
		default:
			tb.Set(p, reachable(int64(rng.Intn(100)+1)))
		}
		for probe := 0; probe < 4; probe++ {
			dst := addr.V4(10, byte(rng.Intn(len(prefixes))), 1, 1)
			wantR, wantOK := tb.Lookup(dst)
			gotR, gotOK := c.Lookup(dst)
			if gotOK != wantOK || gotR != wantR {
				t.Fatalf("step %d: cache %+v,%v != direct %+v,%v", step, gotR, gotOK, wantR, wantOK)
			}
			// Repeat hit must match too.
			gotR, gotOK = c.Lookup(dst)
			if gotOK != wantOK || gotR != wantR {
				t.Fatalf("step %d: repeat hit diverged", step)
			}
		}
	}
}

// TestReferencePathBypassesCache: with the fast path off, the cache is a
// pure pass-through.
func TestReferencePathBypassesCache(t *testing.T) {
	prev := fastpath.Set(true)
	defer fastpath.Set(prev)
	tb := &unicast.Table{}
	p := addr.MustPrefix(addr.V4(10, 1, 0, 0), 16)
	dst := addr.V4(10, 1, 2, 3)
	tb.Set(p, reachable(1))
	c := New(tb)
	c.Lookup(dst) // populate
	fastpath.Set(false)
	tb.Set(p, reachable(9))
	if r, _ := c.Lookup(dst); r.Metric != 9 {
		t.Fatalf("reference path served cached result: %+v", r)
	}
}

// TestWarmHitAllocFree asserts the steady-state cost: a cache hit with an
// unchanged generation allocates nothing.
func TestWarmHitAllocFree(t *testing.T) {
	tb := &unicast.Table{}
	tb.Set(addr.MustPrefix(addr.V4(10, 1, 0, 0), 16), reachable(1))
	c := New(tb)
	dst := addr.V4(10, 1, 2, 3)
	miss := addr.V4(99, 9, 9, 9)
	c.Lookup(dst)
	c.Lookup(miss)
	if n := testing.AllocsPerRun(100, func() {
		c.Lookup(dst)
		c.Lookup(miss)
	}); n != 0 {
		t.Errorf("warm hit allocates %.1f per run", n)
	}
}

func BenchmarkRPFCacheHit(b *testing.B) {
	tb := &unicast.Table{}
	for i := 0; i < 128; i++ {
		tb.Set(addr.MustPrefix(addr.V4(10, 100, byte(i), 0), 24), reachable(int64(i+1)))
	}
	c := New(tb)
	dst := addr.V4(10, 100, 77, 1)
	c.Lookup(dst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(dst)
	}
}

func BenchmarkRPFUncached(b *testing.B) {
	prev := fastpath.Set(false)
	defer fastpath.Set(prev)
	tb := &unicast.Table{}
	for i := 0; i < 128; i++ {
		tb.Set(addr.MustPrefix(addr.V4(10, 100, byte(i), 0), 24), reachable(int64(i+1)))
	}
	c := New(tb)
	dst := addr.V4(10, 100, 77, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(dst)
	}
}
