// Package packet implements the IPv4-style datagram header used on every
// simulated link. The codec is a real byte-level encoder/decoder (network
// byte order, ones-complement header checksum, TTL) so the protocol stacks
// above it exercise genuine marshal/unmarshal paths rather than passing Go
// structs around.
//
// The layout is the classic 20-byte IPv4 header without options:
//
//	 0               1               2               3
//	+-------+-------+---------------+-------------------------------+
//	|Ver=4  | IHL=5 |      TOS      |          Total Length         |
//	+-------+-------+---------------+-------------------------------+
//	|         Identification        |          (flags/frag=0)       |
//	+---------------+---------------+-------------------------------+
//	|      TTL      |   Protocol    |        Header Checksum        |
//	+---------------+---------------+-------------------------------+
//	|                       Source Address                          |
//	+----------------------------------------------------------------
//	|                     Destination Address                       |
//	+----------------------------------------------------------------
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pim/internal/addr"
)

// HeaderLen is the fixed encoded header size (no options).
const HeaderLen = 20

// IP protocol numbers used by the simulated stacks. IGMP and PIM use their
// standard numbers; the remaining control protocols use simulator-local
// numbers from the unassigned range (documented in DESIGN.md: the 1994 paper
// carried PIM and DVMRP inside IGMP message types, we give each protocol its
// own demux number instead).
const (
	ProtoIGMP    = 2
	ProtoUDP     = 17 // application data payloads
	ProtoPIM     = 103
	ProtoDVMRP   = 200
	ProtoCBT     = 201
	ProtoRIPSim  = 202 // distance-vector unicast routing messages
	ProtoLSSim   = 203 // link-state unicast routing messages
	ProtoMOSPF   = 204 // group-membership LSA flooding
	ProtoPIMData = 205 // PIM register-encapsulated data (outer header proto)
)

// DefaultTTL is the initial TTL for locally originated datagrams.
const DefaultTTL = 64

// Decode errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad version/IHL")
	ErrBadChecksum = errors.New("packet: bad header checksum")
	ErrBadLength   = errors.New("packet: total length mismatch")
)

// Packet is a parsed datagram: header fields plus payload bytes.
type Packet struct {
	TOS      byte
	ID       uint16
	TTL      byte
	Protocol byte
	Src      addr.IP
	Dst      addr.IP
	Payload  []byte
}

// New builds a datagram with DefaultTTL.
func New(src, dst addr.IP, proto byte, payload []byte) *Packet {
	return &Packet{TTL: DefaultTTL, Protocol: proto, Src: src, Dst: dst, Payload: payload}
}

// Len returns the encoded length of the datagram.
func (p *Packet) Len() int { return HeaderLen + len(p.Payload) }

// Marshal encodes the datagram, computing the header checksum.
func (p *Packet) Marshal() ([]byte, error) {
	return p.MarshalTo(make([]byte, 0, p.Len()))
}

// MarshalTo appends the encoded datagram to dst and returns the extended
// slice. The output bytes are identical to Marshal's; passing a recycled
// dst[:0] makes the warm encode path allocation-free.
func (p *Packet) MarshalTo(dst []byte) ([]byte, error) {
	total := p.Len()
	if total > 0xFFFF {
		return dst, fmt.Errorf("packet: payload too large (%d bytes)", len(p.Payload))
	}
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	b := dst[off:]
	b[0] = 4<<4 | 5 // version 4, IHL 5 words
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	// flags/fragment offset stay zero: the simulator never fragments.
	b[8] = p.TTL
	b[9] = p.Protocol
	binary.BigEndian.PutUint32(b[12:], uint32(p.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(p.Dst))
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:HeaderLen]))
	return append(dst, p.Payload...), nil
}

// Unmarshal decodes and validates a datagram. The returned packet's Payload
// aliases b; callers that retain packets across buffer reuse must copy.
func Unmarshal(b []byte) (*Packet, error) {
	p := new(Packet)
	if err := UnmarshalInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalInto decodes and validates a datagram into a caller-owned Packet,
// allocating nothing. Like Unmarshal, p.Payload aliases b afterwards.
func UnmarshalInto(p *Packet, b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	if b[0] != 4<<4|5 {
		return ErrBadVersion
	}
	if Checksum(b[:HeaderLen]) != 0 {
		return ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < HeaderLen || total > len(b) {
		return ErrBadLength
	}
	*p = Packet{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      addr.IP(binary.BigEndian.Uint32(b[12:])),
		Dst:      addr.IP(binary.BigEndian.Uint32(b[16:])),
		Payload:  b[HeaderLen:total],
	}
	return nil
}

// Forwarded returns a copy of p with the TTL decremented, or false if the
// TTL is exhausted and the packet must be dropped.
func (p *Packet) Forwarded() (*Packet, bool) {
	if p.TTL <= 1 {
		return nil, false
	}
	q := *p
	q.TTL--
	return &q, true
}

// Checksum computes the RFC 1071 ones-complement sum over b. Computing it
// over a header whose checksum field holds the transmitted checksum yields 0
// for an intact header.
func Checksum(b []byte) uint16 {
	var sum uint32
	for ; len(b) >= 2; b = b[2:] {
		sum += uint32(b[0])<<8 | uint32(b[1])
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}

// Scratch is a reusable control-plane encode workspace: a payload buffer
// plus a header struct, both recycled across sends so a warm send site
// allocates nothing. Embed one per router (the router itself lives on the
// heap, so &s.Pkt never escape-allocates) and rebuild it on every send:
//
//	s.Buf = pimmsg.AppendEnvelope(s.Buf[:0], pimmsg.TypeQuery)
//	s.Buf = m.MarshalTo(s.Buf)
//	node.Send(out, s.Packet(src, dst, proto, ttl), hop)
//
// The Packet handed to Send is only borrowed: netsim marshals it into a
// transmit frame before Send returns, so the scratch may be reused
// immediately. Scratch is NOT safe for packets retained past the Send call
// (LocalSend handlers run synchronously and may re-enter the same router's
// send path — keep those on the allocating packet.New).
type Scratch struct {
	Buf []byte
	Pkt Packet
}

// Packet points the scratch header at the scratch buffer and returns it.
func (s *Scratch) Packet(src, dst addr.IP, proto, ttl byte) *Packet {
	s.Pkt = Packet{TTL: ttl, Protocol: proto, Src: src, Dst: dst, Payload: s.Buf}
	return &s.Pkt
}

// String renders a compact one-line summary for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%v>%v proto=%d ttl=%d len=%d", p.Src, p.Dst, p.Protocol, p.TTL, p.Len())
}
