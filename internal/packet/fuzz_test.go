package packet

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanics: arbitrary wire bytes must decode or error,
// never panic.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		if p, err := Unmarshal(b); err == nil {
			// Random bytes essentially never satisfy the checksum; if one
			// does, it must at least be self-consistent.
			if p.Len() > len(b) {
				t.Fatalf("decoded length %d beyond buffer %d", p.Len(), len(b))
			}
		}
	}
}
