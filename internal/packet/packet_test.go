package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pim/internal/addr"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := New(addr.V4(10, 0, 0, 1), addr.V4(225, 0, 0, 7), ProtoPIM, []byte("join/prune payload"))
	p.TOS = 0x10
	p.ID = 4242
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.Protocol != p.Protocol ||
		q.TTL != p.TTL || q.TOS != p.TOS || q.ID != p.ID {
		t.Fatalf("header mismatch: got %+v want %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q vs %q", q.Payload, p.Payload)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, tos, ttl, proto byte, id uint16, payload []byte) bool {
		if len(payload) > 0xFFFF-HeaderLen {
			payload = payload[:0xFFFF-HeaderLen]
		}
		p := &Packet{TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: addr.IP(src), Dst: addr.IP(dst), Payload: payload}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return q.TOS == p.TOS && q.ID == p.ID && q.TTL == p.TTL &&
			q.Protocol == p.Protocol && q.Src == p.Src && q.Dst == p.Dst &&
			bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderLen-1)); !errors.Is(err, ErrTruncated) {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestUnmarshalBadVersion(t *testing.T) {
	p := New(1, 2, ProtoUDP, nil)
	b, _ := p.Marshal()
	b[0] = 6 << 4 // IPv6-ish
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("got %v, want ErrBadVersion", err)
	}
}

func TestUnmarshalCorruptionDetected(t *testing.T) {
	p := New(addr.V4(10, 0, 0, 1), addr.V4(10, 0, 0, 2), ProtoUDP, []byte{1, 2, 3})
	b, _ := p.Marshal()
	// Flip each header bit in turn: every single-bit header corruption must
	// be rejected (checksum, version, or length check).
	for bit := 0; bit < HeaderLen*8; bit++ {
		c := append([]byte(nil), b...)
		c[bit/8] ^= 1 << (bit % 8)
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestUnmarshalLengthValidation(t *testing.T) {
	p := New(1, 2, ProtoUDP, []byte{9, 9})
	b, _ := p.Marshal()
	// Total length larger than buffer: must fail even with fixed checksum.
	c := append([]byte(nil), b...)
	c[2], c[3] = 0xFF, 0xFF
	c[10], c[11] = 0, 0
	cs := Checksum(c[:HeaderLen])
	c[10], c[11] = byte(cs>>8), byte(cs)
	if _, err := Unmarshal(c); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversized total length: got %v, want ErrBadLength", err)
	}
}

func TestUnmarshalTrailingBytesIgnored(t *testing.T) {
	p := New(1, 2, ProtoUDP, []byte("abc"))
	b, _ := p.Marshal()
	b = append(b, 0xDE, 0xAD) // link padding
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(q.Payload) != "abc" {
		t.Errorf("payload = %q, want abc (padding must be excluded)", q.Payload)
	}
}

func TestMarshalTooLarge(t *testing.T) {
	p := New(1, 2, ProtoUDP, make([]byte, 0x10000))
	if _, err := p.Marshal(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestForwardedDecrementsTTL(t *testing.T) {
	p := New(1, 2, ProtoUDP, nil)
	p.TTL = 3
	q, ok := p.Forwarded()
	if !ok || q.TTL != 2 {
		t.Fatalf("Forwarded: ok=%v ttl=%d", ok, q.TTL)
	}
	if p.TTL != 3 {
		t.Error("Forwarded mutated the original")
	}
	p.TTL = 1
	if _, ok := p.Forwarded(); ok {
		t.Error("TTL 1 packet should not be forwardable")
	}
	p.TTL = 0
	if _, ok := p.Forwarded(); ok {
		t.Error("TTL 0 packet should not be forwardable")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Example from RFC 1071 discussions: verify complement-sum-to-zero.
	h := []byte{0x45, 0x00, 0x00, 0x30, 0x44, 0x22, 0x40, 0x00, 0x80, 0x06,
		0x00, 0x00, 0x8c, 0x7c, 0x19, 0xac, 0xae, 0x24, 0x1e, 0x2b}
	cs := Checksum(h)
	h[10], h[11] = byte(cs>>8), byte(cs)
	if Checksum(h) != 0 {
		t.Error("checksum over checksummed header should be 0")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Errorf("odd-length checksum wrong: %04x", Checksum([]byte{0xFF}))
	}
}

func TestStringFormat(t *testing.T) {
	p := New(addr.V4(10, 0, 0, 1), addr.V4(225, 0, 0, 1), ProtoPIM, []byte{1})
	got := p.String()
	want := "10.0.0.1>225.0.0.1 proto=103 ttl=64 len=21"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func BenchmarkMarshal(b *testing.B) {
	payload := make([]byte, 512)
	rand.New(rand.NewSource(1)).Read(payload)
	p := New(addr.V4(10, 0, 0, 1), addr.V4(225, 0, 0, 7), ProtoUDP, payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := New(addr.V4(10, 0, 0, 1), addr.V4(225, 0, 0, 7), ProtoUDP, make([]byte, 512))
	buf, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
