package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: any accepted packet must re-marshal to an equivalent
// decode (header fields and payload preserved).
func FuzzUnmarshal(f *testing.F) {
	p := New(0x0A000001, 0xE1000000, ProtoUDP, []byte("payload"))
	raw, _ := p.Marshal()
	f.Add(raw)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Unmarshal(b)
		if err != nil {
			return
		}
		raw, err := p.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted packet failed: %v", err)
		}
		q, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.Src != p.Src || q.Dst != p.Dst || q.Protocol != p.Protocol ||
			q.TTL != p.TTL || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("round trip changed the packet")
		}
	})
}
