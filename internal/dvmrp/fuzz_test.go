package dvmrp_test

import (
	"math/rand"
	"testing"

	"pim/internal/dvmrp"
)

// TestUnmarshalNeverPanics: arbitrary bytes must decode or error cleanly.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _ = dvmrp.Unmarshal(b)
	}
}
