package dvmrp_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/dvmrp"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

func TestMessageRoundTrip(t *testing.T) {
	for _, typ := range []byte{dvmrp.TypeProbe, dvmrp.TypePrune, dvmrp.TypeGraft, dvmrp.TypeGraftAck} {
		m := &dvmrp.Message{Type: typ, Source: addr.V4(10, 100, 0, 1), Group: addr.GroupForIndex(3), Lifetime: 120}
		got, err := dvmrp.Unmarshal(m.Marshal())
		if err != nil || *got != *m {
			t.Fatalf("type %d: got %+v err %v", typ, got, err)
		}
	}
	if _, err := dvmrp.Unmarshal(make([]byte, 11)); err == nil {
		t.Error("short message accepted")
	}
	if _, err := dvmrp.Unmarshal(make([]byte, 12)); err == nil {
		t.Error("type 0 accepted")
	}
}

// lineSim builds a 5-router line: receiver host at 0, member-less host LAN
// at 2 (truncation target), sender at 4.
func lineSim(t *testing.T, pruneLifetime netsim.Time) (*scenario.Sim, *scenario.DVMRPDeployment, *igmp.Host, *igmp.Host) {
	t.Helper()
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sim.AddHost(2) // bystander host, never joins
	sender := sim.AddHost(4)
	sim.FinishUnicast(scenario.UseOracle)
	dep := sim.Deploy(scenario.DVMRPMode, scenario.WithDVMRPConfig(dvmrp.Config{PruneLifetime: pruneLifetime})).(*scenario.DVMRPDeployment)
	sim.Run(2 * netsim.Second)
	return sim, dep, receiver, sender
}

func TestFloodAndDeliver(t *testing.T) {
	sim, _, receiver, sender := lineSim(t, 0)
	g := addr.GroupForIndex(0)
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, g, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[g]; got < 4 {
		t.Fatalf("receiver got %d packets", got)
	}
}

func TestTruncatedBroadcast(t *testing.T) {
	sim, _, receiver, sender := lineSim(t, 0)
	g := addr.GroupForIndex(0)
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	// The member-less host LAN at router 2 must not carry data.
	lan2 := sim.HostLANs[2]
	if n := sim.Net.Stats.PerLink[lan2.ID].DataPackets; n != 1 {
		// 1 = the (unavoidable) trace of nothing beyond the sender's own
		// initial injection count on its own LAN; the bystander LAN index
		// differs, so expect exactly 0 here.
		if n != 0 {
			t.Errorf("member-less leaf LAN carried %d data packets", n)
		}
	}
}

func TestPruningStopsBroadcast(t *testing.T) {
	// No receivers at all: after the first packet floods and prunes return,
	// later packets must stay on the sender's first-hop only.
	sim, dep, _, sender := lineSim(t, 600*netsim.Second)
	g := addr.GroupForIndex(0)
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	flood := sim.Net.Stats.Totals.DataPackets
	if flood == 0 {
		t.Fatal("first packet did not flood")
	}
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	after := sim.Net.Stats.Totals.DataPackets
	// The second packet should cross at most the sender LAN + nothing else
	// (its first hop router has an empty oif list).
	if after-flood > 2 {
		t.Errorf("pruned tree still carried %d packets", after-flood)
	}
	if dep.Routers[4].StateCount() == 0 {
		t.Error("first-hop router lost its (S,G) state")
	}
	prunes := int64(0)
	for _, r := range dep.Routers {
		prunes += r.Metrics.Get("ctrl.prune")
	}
	if prunes == 0 {
		t.Error("no prunes were sent")
	}
}

func TestGrowBackRebroadcasts(t *testing.T) {
	// Short prune lifetime: after it expires, data floods again — the
	// Figure 1(b) periodic broadcast behaviour.
	sim, _, _, sender := lineSim(t, 10*netsim.Second)
	g := addr.GroupForIndex(0)
	scenario.SendData(sender, g, 64)
	sim.Run(5 * netsim.Second)
	afterPrune := sim.Net.Stats.Totals.DataPackets
	// Within the prune lifetime: quiet.
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	quiet := sim.Net.Stats.Totals.DataPackets - afterPrune
	// After the lifetime: broadcast resumes.
	sim.Run(10 * netsim.Second)
	base := sim.Net.Stats.Totals.DataPackets
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	regrow := sim.Net.Stats.Totals.DataPackets - base
	if quiet >= regrow {
		t.Errorf("no grow-back: quiet-phase packets %d, regrow-phase %d", quiet, regrow)
	}
}

func TestGraftSplicesNewMember(t *testing.T) {
	// Long prune lifetime; a member joining after pruning must graft the
	// branch back without waiting for grow-back.
	sim, _, receiver, sender := lineSim(t, 600*netsim.Second)
	g := addr.GroupForIndex(0)
	// First packet floods, everything prunes (no members).
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	// Now the receiver joins: graft should travel upstream.
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	if receiver.Received[g] == 0 {
		t.Fatal("graft did not restore delivery")
	}
}

func TestRPFDropsOffPathDuplicates(t *testing.T) {
	// Diamond topology: 0-1-3 and 0-2-3. Flooding from 0 reaches 3 via both
	// branches; RPF must drop one of them so 3 forwards exactly once.
	g := topology.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	sim := scenario.Build(g)
	sender := sim.AddHost(0)
	receiver := sim.AddHost(3)
	sim.FinishUnicast(scenario.UseOracle)
	sim.Deploy(scenario.DVMRPMode)
	sim.Run(2 * netsim.Second)
	grp := addr.GroupForIndex(0)
	receiver.Join(grp)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, grp, 64)
	sim.Run(2 * netsim.Second)
	if got := receiver.Received[grp]; got != 1 {
		t.Errorf("receiver got %d copies, want exactly 1 (RPF check)", got)
	}
}

func TestLeaveTriggersPrune(t *testing.T) {
	sim, dep, receiver, sender := lineSim(t, 600*netsim.Second)
	g := addr.GroupForIndex(0)
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	if receiver.Received[g] != 1 {
		t.Fatalf("setup delivery failed: %d", receiver.Received[g])
	}
	// The member leaves mid-flow: the branch prunes and traffic stops
	// crossing the backbone.
	receiver.Leave(g)
	sim.Run(2 * netsim.Second)
	before := sim.Net.Stats.Totals.DataPackets
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	if extra := sim.Net.Stats.Totals.DataPackets - before; extra > 2 {
		t.Errorf("tree still carried %d packets after leave", extra)
	}
	prunes := int64(0)
	for _, r := range dep.Routers {
		prunes += r.Metrics.Get("ctrl.prune")
	}
	if prunes == 0 {
		t.Error("no prunes after leave")
	}
}
