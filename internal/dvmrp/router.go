package dvmrp

import (
	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/rpf"
	"pim/internal/telemetry"
	"pim/internal/unicast"
)

// Config carries the protocol parameters.
type Config struct {
	// PruneLifetime bounds how long a pruned branch stays pruned before it
	// grows back (the paper's periodic-rebroadcast cost).
	PruneLifetime netsim.Time
	// ProbeInterval paces neighbor probes; an interface with no probing
	// neighbor is a leaf subnet subject to truncated broadcast.
	ProbeInterval netsim.Time
	// GraftRetry is the initial graft retransmission interval: grafts are
	// acknowledged, and an unacked graft is re-sent with doubling backoff
	// (capped at 8x) until the ack arrives or the branch stops wanting
	// traffic.
	GraftRetry netsim.Time
	// Telemetry, when non-nil, receives structured events for every state
	// transition (see internal/telemetry).
	Telemetry *telemetry.Bus
}

// Defaults. RFC 1075 uses ~2 hours for prunes; experiments scale it down so
// the grow-back behaviour is observable (configurable per run).
const (
	DefaultPruneLifetime = 120 * netsim.Second
	DefaultProbeInterval = 30 * netsim.Second
	DefaultGraftRetry    = 3 * netsim.Second
)

// infiniteExpiry keeps default-on oifs alive until explicitly pruned.
const infiniteExpiry = netsim.Time(1) << 60

// Router is one DVMRP router instance.
type Router struct {
	Node    *netsim.Node
	Cfg     Config
	Unicast unicast.Router
	MFIB    *mfib.Table
	Metrics *metrics.Counters

	// tel is the telemetry bus from Config.Telemetry; nil disables all
	// publication.
	tel *telemetry.Bus

	// rpfc memoizes the per-packet reverse-path lookup, invalidated by
	// unicast table generation.
	rpfc *rpf.Cache

	// neighbors[ifaceIndex][addr] = expiry; learned from probes.
	neighbors map[int]map[addr.IP]netsim.Time
	// members[ifaceIndex][group] = true; local membership from IGMP.
	members map[int]map[addr.IP]bool
	// prunedUpstream[key] = true when we sent a prune toward the source and
	// have not grafted back.
	prunedUpstream map[mfib.Key]bool
	// pendingGrafts holds the retransmission state of unacked grafts.
	pendingGrafts map[mfib.Key]*pendingGraft

	// enc is the reusable control-message encode workspace (see
	// core.Router.enc): safe because Node.Send copies the payload into its
	// transmit frame before returning.
	enc packet.Scratch

	started bool
	// epoch invalidates scheduled closures across Stop/Restart (see
	// core.Router): timer bodies fire only under the epoch they were
	// scheduled in.
	epoch uint64
}

// pendingGraft tracks one unacked graft awaiting retransmission.
type pendingGraft struct {
	timer   *netsim.Timer
	backoff netsim.Time
}

// New builds a DVMRP router.
func New(nd *netsim.Node, cfg Config, uni unicast.Router) *Router {
	if cfg.PruneLifetime == 0 {
		cfg.PruneLifetime = DefaultPruneLifetime
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.GraftRetry == 0 {
		cfg.GraftRetry = DefaultGraftRetry
	}
	return &Router{
		Node: nd, Cfg: cfg, Unicast: uni,
		tel:            cfg.Telemetry,
		rpfc:           rpf.New(uni),
		MFIB:           mfib.NewTable(),
		Metrics:        metrics.New(),
		neighbors:      map[int]map[addr.IP]netsim.Time{},
		members:        map[int]map[addr.IP]bool{},
		prunedUpstream: map[mfib.Key]bool{},
		pendingGrafts:  map[mfib.Key]*pendingGraft{},
	}
}

// Start registers handlers and begins probing.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochStart, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.Node.Handle(packet.ProtoDVMRP, netsim.HandlerFunc(r.handleCtrl))
	r.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(r.handleData))
	var probe func()
	probe = func() {
		r.expireNeighbors()
		r.sendProbes()
		r.after(r.Cfg.ProbeInterval, probe)
	}
	r.after(0, probe)
}

// Stop detaches the router and discards all soft state: forwarding entries,
// neighbor liveness, local membership, prune markers, and graft
// retransmission timers. Scheduled closures die via the epoch bump.
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochEnd, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.epoch++
	r.Node.Handle(packet.ProtoDVMRP, nil)
	r.Node.Handle(packet.ProtoUDP, nil)
	for _, p := range r.pendingGrafts {
		p.timer.Stop()
	}
	r.rpfc = rpf.New(r.Unicast)
	r.MFIB = mfib.NewTable()
	r.neighbors = map[int]map[addr.IP]netsim.Time{}
	r.members = map[int]map[addr.IP]bool{}
	r.prunedUpstream = map[mfib.Key]bool{}
	r.pendingGrafts = map[mfib.Key]*pendingGraft{}
}

// Restart brings a stopped router back empty; broadcast-and-prune state
// rebuilds from the data packets themselves.
func (r *Router) Restart() {
	r.Stop()
	r.Start()
}

// after schedules fn under the current epoch: a Stop/Restart before the
// timer fires makes the closure a no-op.
func (r *Router) after(d netsim.Time, fn func()) *netsim.Timer {
	ep := r.epoch
	return r.Node.Sched().After(d, func() {
		if r.epoch == ep {
			// Published past the epoch guard so the event records a timer
			// body that actually ran (see core.Router.after).
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.TimerFire, Router: r.Node.ID,
					Iface: -1, Epoch: ep,
				})
			}
			fn()
		}
	})
}

func (r *Router) now() netsim.Time { return r.Node.Sched().Now() }

// StateCount returns the number of multicast forwarding entries.
func (r *Router) StateCount() int { return r.MFIB.Len() }

// NeighborCount returns the number of live DVMRP neighbor entries across
// all interfaces — the recovery tests' stale-neighbor probe.
func (r *Router) NeighborCount() int {
	now := r.now()
	n := 0
	for _, byAddr := range r.neighbors {
		for _, deadline := range byAddr {
			if now <= deadline {
				n++
			}
		}
	}
	return n
}

// --- Membership (from IGMP) ---

// LocalJoin records a member and grafts pruned branches back (§1.1 graft).
func (r *Router) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	byGroup := r.members[ifc.Index]
	if byGroup == nil {
		byGroup = map[addr.IP]bool{}
		r.members[ifc.Index] = byGroup
	}
	byGroup[g] = true
	// Splice this interface back into every active source's tree.
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		if e.Wildcard || e.Key.RPBit {
			return
		}
		e.AddLocalOIF(ifc)
		if r.prunedUpstream[e.Key] {
			r.sendCtrlUpstream(e, TypeGraft, 0)
			delete(r.prunedUpstream, e.Key)
		}
	})
}

// LocalLeave removes a member; sources flowing to a now-dead branch get
// pruned.
func (r *Router) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	if byGroup := r.members[ifc.Index]; byGroup != nil {
		delete(byGroup, g)
	}
	now := r.now()
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		if e.Wildcard || e.Key.RPBit {
			return
		}
		if o := e.OIF(ifc.Index); o != nil && o.LocalMember {
			o.LocalMember = false
			e.Touch()
			if !o.Live(now) {
				e.RemoveOIF(ifc)
			}
		}
		r.maybePruneUpstream(e)
	})
}

func (r *Router) hasMember(ifc *netsim.Iface, g addr.IP) bool {
	byGroup := r.members[ifc.Index]
	return byGroup != nil && byGroup[g]
}

// --- Neighbor probes ---

func (r *Router) sendProbes() {
	m := Message{Type: TypeProbe}
	r.enc.Buf = m.MarshalTo(r.enc.Buf[:0])
	for _, ifc := range r.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoDVMRP, 1), 0)
	}
}

func (r *Router) expireNeighbors() {
	now := r.now()
	for _, byAddr := range r.neighbors {
		for a, deadline := range byAddr {
			if now > deadline {
				delete(byAddr, a)
			}
		}
	}
}

// isLeaf reports whether an interface has no DVMRP neighbor: a leaf subnet
// eligible for truncated broadcast.
func (r *Router) isLeaf(ifc *netsim.Iface) bool {
	now := r.now()
	for _, deadline := range r.neighbors[ifc.Index] {
		if now <= deadline {
			return false
		}
	}
	return true
}

// neighborUp re-evaluates existing (S,G) entries when an adjacency forms on
// ifc. A restarted transit router that receives data before its downstream
// neighbor's first probe classifies ifc as a leaf, builds entries that omit
// it, and prunes upstream; nothing ever grows the branch back because the
// downstream (which kept forwarding) has no pruned state to graft from. The
// truncated-broadcast contract (§1.1) says a non-leaf interface carries the
// flow until its neighbor prunes — so on adjacency-up, restore the branch.
func (r *Router) neighborUp(ifc *netsim.Iface) {
	if !ifc.Up() || ifc.Addr == 0 {
		return
	}
	now := r.now()
	r.MFIB.ForEach(func(e *mfib.Entry) {
		if e.Wildcard || e.Key.RPBit {
			return
		}
		if e.IIF == ifc {
			return
		}
		if o := e.OIF(ifc.Index); o != nil && o.Live(now) {
			return
		}
		e.AddOIF(ifc, infiniteExpiry)
		if r.prunedUpstream[e.Key] {
			r.sendCtrlUpstream(e, TypeGraft, 0)
			delete(r.prunedUpstream, e.Key)
		}
	})
}

// --- Control messages ---

func (r *Router) handleCtrl(in *netsim.Iface, pkt *packet.Packet) {
	var msg Message
	if err := UnmarshalInto(&msg, pkt.Payload); err != nil {
		return
	}
	m := &msg
	switch m.Type {
	case TypeProbe:
		byAddr := r.neighbors[in.Index]
		if byAddr == nil {
			byAddr = map[addr.IP]netsim.Time{}
			r.neighbors[in.Index] = byAddr
		}
		deadline, known := byAddr[pkt.Src]
		fresh := !known || r.now() > deadline
		byAddr[pkt.Src] = r.now() + 3*r.Cfg.ProbeInterval
		if fresh {
			r.neighborUp(in)
		}
	case TypePrune:
		r.handlePrune(in, m)
	case TypeGraft:
		r.handleGraft(in, pkt.Src, m)
	case TypeGraftAck:
		// The graft reached upstream: cancel its retransmission timer.
		key := mfib.Key{Source: m.Source, Group: m.Group}
		if p := r.pendingGrafts[key]; p != nil {
			p.timer.Stop()
			delete(r.pendingGrafts, key)
		}
	}
}

// handlePrune removes the downstream interface and grows it back after the
// prune lifetime.
func (r *Router) handlePrune(in *netsim.Iface, m *Message) {
	e := r.MFIB.SG(m.Source, m.Group)
	if e == nil {
		return
	}
	if r.hasMember(in, m.Group) {
		return // members still present on that subnet: ignore stray prune
	}
	e.RemoveOIF(in)
	lifetime := netsim.Time(m.Lifetime) * netsim.Second
	key := e.Key
	r.after(lifetime, func() {
		// Grow back (§1.1): the branch resumes broadcast until re-pruned.
		if cur := r.MFIB.Get(key); cur != nil && in.Up() {
			cur.AddOIF(in, infiniteExpiry)
			delete(r.prunedUpstream, key)
		}
	})
	r.maybePruneUpstream(e)
}

// handleGraft re-attaches a downstream branch and propagates upstream if we
// had pruned ourselves.
func (r *Router) handleGraft(in *netsim.Iface, from addr.IP, m *Message) {
	ack := Message{Type: TypeGraftAck, Source: m.Source, Group: m.Group}
	r.enc.Buf = ack.MarshalTo(r.enc.Buf[:0])
	r.Node.Send(in, r.enc.Packet(in.Addr, from, packet.ProtoDVMRP, 1), from)
	r.Metrics.Inc(metrics.CtrlGraft)

	e := r.MFIB.SG(m.Source, m.Group)
	if e == nil {
		return
	}
	e.AddOIF(in, infiniteExpiry)
	if r.prunedUpstream[e.Key] {
		r.sendCtrlUpstream(e, TypeGraft, 0)
		delete(r.prunedUpstream, e.Key)
	}
}

// maybePruneUpstream sends a prune toward the source when no outgoing
// interface remains.
func (r *Router) maybePruneUpstream(e *mfib.Entry) {
	if !e.OIFEmpty(r.now()) || r.prunedUpstream[e.Key] {
		return
	}
	if e.UpstreamNeighbor == 0 {
		return // first-hop router for the source: nothing upstream
	}
	r.sendCtrlUpstream(e, TypePrune, uint16(r.Cfg.PruneLifetime/netsim.Second))
	r.prunedUpstream[e.Key] = true
	// Self grow-back: after the advertised lifetime upstream resumes
	// sending, so clear the pruned marker and let data re-populate.
	key := e.Key
	r.after(r.Cfg.PruneLifetime, func() {
		delete(r.prunedUpstream, key)
	})
}

func (r *Router) sendCtrlUpstream(e *mfib.Entry, typ byte, lifetime uint16) {
	if e.IIF == nil || e.UpstreamNeighbor == 0 || !e.IIF.Up() {
		return
	}
	m := Message{Type: typ, Source: e.Key.Source, Group: e.Key.Group, Lifetime: lifetime}
	r.enc.Buf = m.MarshalTo(r.enc.Buf[:0])
	r.Node.Send(e.IIF, r.enc.Packet(e.IIF.Addr, e.UpstreamNeighbor, packet.ProtoDVMRP, 1), e.UpstreamNeighbor)
	switch typ {
	case TypePrune:
		r.Metrics.Inc(metrics.CtrlPrune)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.PruneSend, Router: r.Node.ID,
				Iface: e.IIF.Index, Epoch: r.epoch,
				Source: e.Key.Source, Group: e.Key.Group,
			})
		}
	case TypeGraft:
		r.Metrics.Inc(metrics.CtrlGraft)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.GraftSend, Router: r.Node.ID,
				Iface: e.IIF.Index, Epoch: r.epoch,
				Source: e.Key.Source, Group: e.Key.Group,
			})
		}
		// Grafts are acknowledged: arm retransmission until the ack lands
		// or the branch no longer wants traffic.
		r.armGraftRetry(e.Key, r.Cfg.GraftRetry)
	}
}

func (r *Router) armGraftRetry(key mfib.Key, backoff netsim.Time) {
	if prev := r.pendingGrafts[key]; prev != nil {
		prev.timer.Stop()
	}
	p := &pendingGraft{backoff: backoff}
	p.timer = r.after(backoff, func() {
		if r.pendingGrafts[key] != p {
			return
		}
		delete(r.pendingGrafts, key)
		e := r.MFIB.Get(key)
		if e == nil || e.OIFEmpty(r.now()) {
			return
		}
		if e.IIF == nil || e.UpstreamNeighbor == 0 || !e.IIF.Up() {
			return
		}
		m := Message{Type: TypeGraft, Source: key.Source, Group: key.Group}
		r.enc.Buf = m.MarshalTo(r.enc.Buf[:0])
		r.Node.Send(e.IIF, r.enc.Packet(e.IIF.Addr, e.UpstreamNeighbor, packet.ProtoDVMRP, 1), e.UpstreamNeighbor)
		r.Metrics.Inc(metrics.CtrlGraft)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: r.now(), Kind: telemetry.GraftSend, Router: r.Node.ID,
				Iface: e.IIF.Index, Epoch: r.epoch,
				Source: key.Source, Group: key.Group,
			})
		}
		next := p.backoff * 2
		if max := 8 * r.Cfg.GraftRetry; next > max {
			next = max
		}
		r.armGraftRetry(key, next)
	})
	r.pendingGrafts[key] = p
}

// --- Data plane: truncated RPF broadcast (§1.1) ---

func (r *Router) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() || g.IsLinkLocalMulticast() {
		return
	}
	s := pkt.Src
	now := r.now()
	// RPF check: accept only on the interface used to reach the source.
	srcLocal := in.Addr != 0 && unicast.LinkPrefix(in.Addr).Contains(s)
	var iif *netsim.Iface
	var upstream addr.IP
	if !srcLocal {
		rt, ok := r.rpfc.Lookup(s)
		if !ok {
			r.Metrics.Inc(metrics.DataDropped)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.NoState, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
				})
			}
			return
		}
		iif, upstream = rt.Iface, rt.NextHop
		if in != iif {
			r.Metrics.Inc(metrics.DataDropped)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.RPFDrop, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
				})
			}
			return
		}
	} else {
		iif = in
	}

	e := r.MFIB.SG(s, g)
	if e == nil {
		// First packet from this source: install broadcast state on every
		// interface except the RPF one, truncating member-less leaves.
		e, _ = r.MFIB.Upsert(mfib.Key{Source: s, Group: g}, now)
		e.IIF, e.UpstreamNeighbor = iif, upstream
		if srcLocal {
			e.UpstreamNeighbor = 0
		}
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.EntryCreate, Router: r.Node.ID, Iface: -1,
				Epoch: r.epoch, Source: s, Group: g, Value: telemetry.EntrySG,
			})
			if !srcLocal {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.IIFSet, Router: r.Node.ID,
					Iface: iif.Index, Epoch: r.epoch, Source: s, Group: g,
					Value: telemetry.EntrySG,
				})
			}
		}
		for _, ifc := range r.Node.Ifaces {
			if ifc == in || !ifc.Up() || ifc.Addr == 0 {
				continue
			}
			if r.isLeaf(ifc) {
				if r.hasMember(ifc, g) {
					e.AddLocalOIF(ifc)
				}
				continue // truncated broadcast
			}
			e.AddOIF(ifc, infiniteExpiry)
		}
	}
	oifs := e.ForwardOIFs(now, in)
	if len(oifs) == 0 {
		r.maybePruneUpstream(e)
		return
	}
	fwd, ok := pkt.Forwarded()
	if !ok {
		return
	}
	for _, out := range oifs {
		r.Node.Send(out, fwd, 0)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: out.Index, Epoch: r.epoch, Source: s, Group: g,
			})
		}
	}
}
