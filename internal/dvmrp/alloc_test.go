package dvmrp

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// TestProbeRefreshZeroAlloc pins the warm periodic neighbor-probe send path
// at zero heap allocations per cycle (see the core engine's twin for the
// warm-up rationale).
func TestProbeRefreshZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)
	oracle := unicast.NewOracle(net)

	ra := New(na, Config{}, oracle.RouterFor(na))
	rb := New(nb, Config{}, oracle.RouterFor(nb))
	ra.Start()
	rb.Start()
	net.Sched.RunUntil(2 * netsim.Second)

	cycle := func() {
		ra.sendProbes()
		rb.sendProbes()
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm probe refresh cycle: %.2f allocs, want 0", allocs)
	}
}
