// Package dvmrp implements the Distance Vector Multicast Routing Protocol
// baseline (RFC 1075, the paper's reference [4]): data-driven truncated RPF
// broadcast, prunes with finite lifetimes that "grow back" (§1.1: "pruned
// branches will grow back after a time-out period"), and grafts that splice
// new members onto pruned branches without waiting for the time-out.
//
// The paper's Figure 1(b) behaviour — the periodic re-broadcast of data
// across the whole internet each time prunes expire — is exactly what this
// implementation reproduces, and what the sparse-mode comparison benchmarks
// measure against PIM.
package dvmrp

import (
	"encoding/binary"
	"errors"

	"pim/internal/addr"
)

// Message types carried over packet.ProtoDVMRP.
const (
	TypeProbe    = 1 // neighbor discovery: distinguishes router links from leaves
	TypePrune    = 2
	TypeGraft    = 3
	TypeGraftAck = 4
)

// Message is the single wire format for all four types; Lifetime is only
// meaningful for prunes.
type Message struct {
	Type     byte
	Source   addr.IP
	Group    addr.IP
	Lifetime uint16 // seconds the prune stays in force
}

// ErrBadMessage reports malformed wire bytes.
var ErrBadMessage = errors.New("dvmrp: malformed message")

// Marshal encodes the message.
func (m *Message) Marshal() []byte { return m.MarshalTo(make([]byte, 0, 12)) }

// MarshalTo appends the encoded message to b (same bytes as Marshal).
func (m *Message) MarshalTo(b []byte) []byte {
	var e [12]byte
	e[0] = m.Type
	binary.BigEndian.PutUint32(e[2:], uint32(m.Source))
	binary.BigEndian.PutUint32(e[6:], uint32(m.Group))
	binary.BigEndian.PutUint16(e[10:], m.Lifetime)
	return append(b, e[:]...)
}

// Unmarshal decodes a message.
func Unmarshal(b []byte) (*Message, error) {
	m := new(Message)
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes a message into a caller-owned struct, allocating
// nothing.
func UnmarshalInto(m *Message, b []byte) error {
	if len(b) < 12 {
		return ErrBadMessage
	}
	*m = Message{
		Type:     b[0],
		Source:   addr.IP(binary.BigEndian.Uint32(b[2:])),
		Group:    addr.IP(binary.BigEndian.Uint32(b[6:])),
		Lifetime: binary.BigEndian.Uint16(b[10:]),
	}
	if m.Type < TypeProbe || m.Type > TypeGraftAck {
		return ErrBadMessage
	}
	return nil
}
