package pimdm

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/unicast"
)

// TestRegionMembershipCallbackOrder pins recomputeRegionPresence to firing
// OnRegionMembership toggles in ascending group order. The border hooks
// behind that callback send joins and grafts, so callback order is emission
// order — if it followed map iteration (the expireNeighbors bug class), a
// single member ad carrying many groups, or one ad origin expiring, would
// emit in a different order every run.
func TestRegionMembershipCallbackOrder(t *testing.T) {
	net := netsim.NewNetwork()
	nd := net.AddNode("a")
	net.AddIface(nd, addr.V4(10, 0, 0, 1))
	oracle := unicast.NewOracle(net)
	r := New(nd, Config{}, oracle.RouterFor(nd))

	var fired []addr.IP
	var present []bool
	r.OnRegionMembership = func(g addr.IP, p bool) {
		fired = append(fired, g)
		present = append(present, p)
	}
	ascending := func(what string) {
		t.Helper()
		for i := 1; i < len(fired); i++ {
			if fired[i-1] >= fired[i] {
				t.Fatalf("%s toggles out of ascending group order: %v", what, fired)
			}
		}
	}

	// One member ad carrying many groups toggles them all in a single
	// recompute — the simultaneous-appearance case.
	const n = 16
	origin := addr.V4(10, 9, 9, 9)
	groups := map[addr.IP]bool{}
	for i := 0; i < n; i++ {
		groups[addr.GroupForIndex(i)] = true
	}
	r.regionAds[origin] = groups
	r.recomputeRegionPresence()
	if len(fired) != n {
		t.Fatalf("fired %d on-toggles, want %d", len(fired), n)
	}
	for i, p := range present {
		if !p {
			t.Fatalf("toggle %d (%v) reported absent on appearance", i, fired[i])
		}
	}
	ascending("on")

	// Simultaneous expiry: the ad origin goes silent and every group
	// vanishes in one recompute.
	fired, present = nil, nil
	delete(r.regionAds, origin)
	r.recomputeRegionPresence()
	if len(fired) != n {
		t.Fatalf("fired %d off-toggles, want %d", len(fired), n)
	}
	for i, p := range present {
		if p {
			t.Fatalf("toggle %d (%v) reported present on expiry", i, fired[i])
		}
	}
	ascending("off")
}
