// Package pimdm implements PIM dense mode, the paper's companion protocol
// (reference [13], discussed in §1.3 fn. 15 and §4): DVMRP-style
// flood-and-prune that is independent of the unicast routing protocol — it
// consumes the same unicast.Router interface as sparse mode — and uses PIM
// message formats (join/prune with the shared LAN semantics, graft, and
// assert for electing a single forwarder on multi-access subnets).
//
// The §4 interoperation discussion ("links should be configurable to
// operate in dense mode or in sparse mode") is exercised by comparison
// benchmarks that run dense and sparse mode over the same topologies and
// measure where each wins.
package pimdm

import (
	"slices"

	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimmsg"
	"pim/internal/rpf"
	"pim/internal/telemetry"
	"pim/internal/unicast"
)

// Config carries the protocol parameters.
type Config struct {
	// PruneHoldTime bounds prune state before the branch grows back.
	PruneHoldTime netsim.Time
	// QueryInterval paces neighbor discovery (leaf detection + asserts).
	QueryInterval netsim.Time
	// PruneOverrideDelay is the LAN override window (shared with sparse
	// mode's §3.7 semantics).
	PruneOverrideDelay netsim.Time
	// GraftRetry is the initial graft retransmission interval: grafts are
	// the one acknowledged (hence reliable) message in dense mode, so an
	// unacked graft is retransmitted with doubling backoff (capped at 8x)
	// until the ack arrives or the entry no longer wants traffic.
	GraftRetry netsim.Time
	// Scope restricts the router to a subset of its interfaces (nil = all).
	// Border routers (internal/border) scope their dense-mode instance to
	// the dense-region interfaces so floods and member advertisements stay
	// inside the region (§4 interoperation).
	Scope func(*netsim.Iface) bool
	// Telemetry, when non-nil, receives structured events for every state
	// transition (see internal/telemetry).
	Telemetry *telemetry.Bus
}

// Defaults.
const (
	DefaultPruneHoldTime      = 120 * netsim.Second
	DefaultQueryInterval      = 30 * netsim.Second
	DefaultPruneOverrideDelay = 3 * netsim.Second
	DefaultGraftRetry         = 3 * netsim.Second
)

const infiniteExpiry = netsim.Time(1) << 60

// Router is one PIM dense-mode router instance.
type Router struct {
	Node    *netsim.Node
	Cfg     Config
	Unicast unicast.Router
	MFIB    *mfib.Table
	Metrics *metrics.Counters

	// tel is the telemetry bus from Config.Telemetry; nil disables all
	// publication.
	tel *telemetry.Bus

	// rpfc memoizes per-packet reverse-path lookups (dense mode RPF-checks
	// every data packet), invalidated by unicast table generation.
	rpfc *rpf.Cache

	neighbors      map[int]map[addr.IP]netsim.Time
	members        map[int]map[addr.IP]bool
	prunedUpstream map[mfib.Key]bool
	// assertLoser[key][ifaceIndex] marks interfaces we lost an assert on.
	assertLoser map[mfib.Key]map[int]bool
	// pendingGrafts holds the retransmission state of unacked grafts.
	pendingGrafts map[mfib.Key]*pendingGraft

	// enc is the reusable control-message encode workspace (see
	// core.Router.enc): safe because Node.Send copies the payload into its
	// transmit frame before returning. jpDec is the join/prune decode
	// scratch, valid only within one handler call. adGroups and adMsg back
	// the periodic member advertisement so the warm path allocates nothing.
	enc      packet.Scratch
	jpDec    pimmsg.JoinPrune
	adGroups []addr.IP
	adMsg    pimmsg.MemberAd

	started bool
	// epoch invalidates scheduled closures across Stop/Restart (see
	// core.Router): timer bodies fire only under the epoch they were
	// scheduled in.
	epoch uint64

	// Member-existence advertisement state (§4 dense/sparse interop):
	// every dense-region router floods the groups it has members for, so
	// border routers can join sparse-mode trees on the region's behalf.
	adSeq     uint32
	regionAds map[addr.IP]map[addr.IP]bool // origin -> groups
	adSeqs    map[addr.IP]uint32
	adSeen    map[addr.IP]netsim.Time // origin -> last advertisement
	// OnRegionMembership fires when a group's region-wide member presence
	// (local or advertised) toggles.
	OnRegionMembership func(g addr.IP, present bool)
	regionPresent      map[addr.IP]bool
	// ExternalInterest, when set, reports that traffic from (s,g) is wanted
	// outside this router's dense scope, suppressing upstream prunes. The
	// border router (internal/border) wires it to the sparse side so the
	// region keeps exporting source traffic toward the RP (§4).
	ExternalInterest func(s, g addr.IP) bool
}

// New builds a dense-mode router.
func New(nd *netsim.Node, cfg Config, uni unicast.Router) *Router {
	if cfg.PruneHoldTime == 0 {
		cfg.PruneHoldTime = DefaultPruneHoldTime
	}
	if cfg.QueryInterval == 0 {
		cfg.QueryInterval = DefaultQueryInterval
	}
	if cfg.PruneOverrideDelay == 0 {
		cfg.PruneOverrideDelay = DefaultPruneOverrideDelay
	}
	if cfg.GraftRetry == 0 {
		cfg.GraftRetry = DefaultGraftRetry
	}
	return &Router{
		Node: nd, Cfg: cfg, Unicast: uni,
		tel:            cfg.Telemetry,
		rpfc:           rpf.New(uni),
		MFIB:           mfib.NewTable(),
		Metrics:        metrics.New(),
		neighbors:      map[int]map[addr.IP]netsim.Time{},
		members:        map[int]map[addr.IP]bool{},
		prunedUpstream: map[mfib.Key]bool{},
		assertLoser:    map[mfib.Key]map[int]bool{},
		pendingGrafts:  map[mfib.Key]*pendingGraft{},
		regionAds:      map[addr.IP]map[addr.IP]bool{},
		adSeqs:         map[addr.IP]uint32{},
		adSeen:         map[addr.IP]netsim.Time{},
		regionPresent:  map[addr.IP]bool{},
	}
}

// inScope reports whether the router operates on the interface.
func (r *Router) inScope(ifc *netsim.Iface) bool {
	return r.Cfg.Scope == nil || r.Cfg.Scope(ifc)
}

// Start registers handlers and begins querying.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochStart, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.Node.Handle(packet.ProtoPIM, netsim.HandlerFunc(r.handlePIM))
	r.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(r.handleData))
	var query func()
	query = func() {
		r.expireNeighbors()
		r.expireMemberAds()
		r.sendQueries()
		r.originateMemberAd()
		r.after(r.Cfg.QueryInterval, query)
	}
	r.after(0, query)
}

// Stop detaches the router and discards all soft state: forwarding entries,
// neighbor liveness, local membership, prune/assert/graft timers, and the
// region membership-advertisement cache. The advertisement sequence number
// survives — peers compare it with signed wraparound and would discard a
// restarted router's advertisements if it restarted from zero.
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.EpochEnd, Router: r.Node.ID, Iface: -1,
			Epoch: r.epoch, Value: int64(r.MFIB.Len()),
		})
	}
	r.epoch++
	r.Node.Handle(packet.ProtoPIM, nil)
	r.Node.Handle(packet.ProtoUDP, nil)
	for _, p := range r.pendingGrafts {
		p.timer.Stop()
	}
	r.rpfc = rpf.New(r.Unicast)
	r.MFIB = mfib.NewTable()
	r.neighbors = map[int]map[addr.IP]netsim.Time{}
	r.members = map[int]map[addr.IP]bool{}
	r.prunedUpstream = map[mfib.Key]bool{}
	r.assertLoser = map[mfib.Key]map[int]bool{}
	r.pendingGrafts = map[mfib.Key]*pendingGraft{}
	r.regionAds = map[addr.IP]map[addr.IP]bool{}
	r.adSeqs = map[addr.IP]uint32{}
	r.adSeen = map[addr.IP]netsim.Time{}
	r.regionPresent = map[addr.IP]bool{}
}

// Restart brings a stopped router back empty, rebuilding purely from
// soft-state refresh (flood-and-prune re-learns forwarding state from the
// data packets themselves).
func (r *Router) Restart() {
	r.Stop()
	r.Start()
}

// after schedules fn under the current epoch: a Stop/Restart before the
// timer fires makes the closure a no-op.
func (r *Router) after(d netsim.Time, fn func()) *netsim.Timer {
	ep := r.epoch
	return r.Node.Sched().After(d, func() {
		if r.epoch == ep {
			// Published past the epoch guard so the event records a timer
			// body that actually ran (see core.Router.after).
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: r.now(), Kind: telemetry.TimerFire, Router: r.Node.ID,
					Iface: -1, Epoch: ep,
				})
			}
			fn()
		}
	})
}

func (r *Router) now() netsim.Time { return r.Node.Sched().Now() }

// StateCount returns the number of forwarding entries.
func (r *Router) StateCount() int { return r.MFIB.Len() }

// NeighborCount returns the number of live PIM neighbor entries across all
// interfaces — the recovery tests' stale-neighbor probe.
func (r *Router) NeighborCount() int {
	now := r.now()
	n := 0
	for _, byAddr := range r.neighbors {
		for _, deadline := range byAddr {
			if now <= deadline {
				n++
			}
		}
	}
	return n
}

// --- Membership ---

// LocalJoin records a member and grafts pruned branches back.
func (r *Router) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	byGroup := r.members[ifc.Index]
	if byGroup == nil {
		byGroup = map[addr.IP]bool{}
		r.members[ifc.Index] = byGroup
	}
	byGroup[g] = true
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		e.AddLocalOIF(ifc)
		if r.prunedUpstream[e.Key] {
			r.sendGraft(e)
			delete(r.prunedUpstream, e.Key)
		}
	})
	r.originateMemberAd()
	r.recomputeRegionPresence()
}

// LocalLeave removes a member; empty branches prune upstream.
func (r *Router) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	if byGroup := r.members[ifc.Index]; byGroup != nil {
		delete(byGroup, g)
	}
	now := r.now()
	r.MFIB.ForGroup(g, func(e *mfib.Entry) {
		if o := e.OIF(ifc.Index); o != nil && o.LocalMember {
			o.LocalMember = false
			e.Touch()
			if !o.Live(now) {
				e.RemoveOIF(ifc)
			}
		}
		r.maybePruneUpstream(e)
	})
	r.originateMemberAd()
	r.recomputeRegionPresence()
}

func (r *Router) hasMember(ifc *netsim.Iface, g addr.IP) bool {
	byGroup := r.members[ifc.Index]
	return byGroup != nil && byGroup[g]
}

// --- Neighbor discovery ---

func (r *Router) sendQueries() {
	q := pimmsg.Query{HoldTime: uint16(3*r.Cfg.QueryInterval/netsim.Second + 15)}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeQuery)
	r.enc.Buf = q.MarshalTo(r.enc.Buf)
	for _, ifc := range r.Node.Ifaces {
		if !ifc.Up() || ifc.Addr == 0 || !r.inScope(ifc) {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
		r.Metrics.Inc(metrics.CtrlQuery)
	}
}

func (r *Router) expireNeighbors() {
	now := r.now()
	for _, byAddr := range r.neighbors {
		for a, deadline := range byAddr {
			if now > deadline {
				delete(byAddr, a)
			}
		}
	}
}

func (r *Router) isLeaf(ifc *netsim.Iface) bool {
	now := r.now()
	for _, deadline := range r.neighbors[ifc.Index] {
		if now <= deadline {
			return false
		}
	}
	return true
}

// neighborUp re-evaluates existing (S,G) entries when an adjacency forms on
// ifc. Without this, a restarted transit router that saw data before its
// downstream neighbor's first hello builds entries with ifc leaf-classified
// and absent from every oif list — and since entries are only grown by
// grafts (which the downstream never sends: it kept forwarding and has no
// pruned state), the pre-crash flow black-holes until PruneHoldTime, or
// forever when the upstream prune is periodically refreshed. Re-adding the
// branch restores the §1.3 flood-and-prune contract: data flows everywhere a
// live neighbor sits until that neighbor says prune.
func (r *Router) neighborUp(ifc *netsim.Iface) {
	if !ifc.Up() || ifc.Addr == 0 || !r.inScope(ifc) {
		return
	}
	now := r.now()
	r.MFIB.ForEach(func(e *mfib.Entry) {
		if e.Wildcard || e.Key.RPBit {
			return
		}
		if e.IIF == ifc {
			return
		}
		if r.assertLoser[e.Key][ifc.Index] {
			return
		}
		if o := e.OIF(ifc.Index); o != nil && o.Live(now) {
			return
		}
		e.AddOIF(ifc, infiniteExpiry)
		if r.prunedUpstream[e.Key] {
			r.sendGraft(e)
			delete(r.prunedUpstream, e.Key)
		}
	})
}

// --- Control messages ---

func (r *Router) handlePIM(in *netsim.Iface, pkt *packet.Packet) {
	typ, body, err := pimmsg.Open(pkt.Payload)
	if err != nil {
		return
	}
	switch typ {
	case pimmsg.TypeQuery:
		var q pimmsg.Query
		if err := pimmsg.UnmarshalQueryInto(&q, body); err != nil {
			return
		}
		byAddr := r.neighbors[in.Index]
		if byAddr == nil {
			byAddr = map[addr.IP]netsim.Time{}
			r.neighbors[in.Index] = byAddr
		}
		deadline, known := byAddr[pkt.Src]
		fresh := !known || r.now() > deadline
		byAddr[pkt.Src] = r.now() + netsim.Time(q.HoldTime)*netsim.Second
		if fresh {
			r.neighborUp(in)
		}
	case pimmsg.TypeJoinPrune:
		r.handleJoinPrune(in, body)
	case pimmsg.TypeGraft:
		r.handleGraft(in, pkt.Src, body)
	case pimmsg.TypeGraftAck:
		r.handleGraftAck(in, body)
	case pimmsg.TypeAssert:
		r.handleAssert(in, pkt.Src, body)
	case pimmsg.TypeMemberAd:
		r.handleMemberAd(in, body)
	}
}

// --- Member-existence advertisements (§4 interop) ---

func (r *Router) localGroups() []addr.IP {
	// Collect into the reusable buffer, then sort+compact to dedupe across
	// interfaces: the warm advertisement path allocates nothing.
	out := r.adGroups[:0]
	for _, byGroup := range r.members {
		for g, ok := range byGroup {
			if ok {
				out = append(out, g)
			}
		}
	}
	slices.Sort(out)
	out = slices.Compact(out)
	r.adGroups = out
	return out
}

func (r *Router) originateMemberAd() {
	r.adSeq++
	r.adMsg = pimmsg.MemberAd{Origin: r.Node.Addr(), Seq: r.adSeq, Groups: r.localGroups()}
	r.floodMemberAd(&r.adMsg, nil)
}

func (r *Router) handleMemberAd(in *netsim.Iface, body []byte) {
	ad, err := pimmsg.UnmarshalMemberAd(body)
	if err != nil || ad.Origin == r.Node.Addr() {
		return
	}
	if cur, ok := r.adSeqs[ad.Origin]; ok && int32(ad.Seq-cur) <= 0 {
		return
	}
	r.adSeqs[ad.Origin] = ad.Seq
	r.adSeen[ad.Origin] = r.now()
	groups := map[addr.IP]bool{}
	for _, g := range ad.Groups {
		groups[g] = true
	}
	r.regionAds[ad.Origin] = groups
	r.floodMemberAd(ad, in)
	r.recomputeRegionPresence()
}

func (r *Router) floodMemberAd(ad *pimmsg.MemberAd, except *netsim.Iface) {
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeMemberAd)
	r.enc.Buf = ad.MarshalTo(r.enc.Buf)
	for _, ifc := range r.Node.Ifaces {
		if ifc == except || !ifc.Up() || ifc.Addr == 0 || !r.inScope(ifc) {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
	}
}

// expireMemberAds drops advertisements from routers that have gone silent
// (soft state: a crashed member router must not pin the border to the
// sparse tree forever).
func (r *Router) expireMemberAds() {
	now := r.now()
	changed := false
	for origin, seen := range r.adSeen {
		if now-seen > 3*r.Cfg.QueryInterval {
			delete(r.adSeen, origin)
			delete(r.adSeqs, origin)
			delete(r.regionAds, origin)
			changed = true
		}
	}
	if changed {
		r.recomputeRegionPresence()
	}
}

// RegionHasMembers reports whether any router in the region (including this
// one) has advertised local members for g.
func (r *Router) RegionHasMembers(g addr.IP) bool {
	for _, byGroup := range r.members {
		if byGroup[g] {
			return true
		}
	}
	for _, groups := range r.regionAds {
		if groups[g] {
			return true
		}
	}
	return false
}

// recomputeRegionPresence fires OnRegionMembership for groups whose
// region-wide presence toggled.
func (r *Router) recomputeRegionPresence() {
	if r.OnRegionMembership == nil {
		return
	}
	seen := map[addr.IP]bool{}
	for _, byGroup := range r.members {
		for g, ok := range byGroup {
			if ok {
				seen[g] = true
			}
		}
	}
	for _, groups := range r.regionAds {
		for g := range groups {
			seen[g] = true
		}
	}
	// Callback order must not follow map iteration: the border hooks send
	// joins/grafts, and under injected loss the draw sequence is consumed
	// in delivery order (the expireNeighbors bug class). Fire toggles in
	// ascending group order.
	var on, off []addr.IP
	for g := range seen {
		if !r.regionPresent[g] {
			on = append(on, g)
		}
	}
	for g := range r.regionPresent {
		if !seen[g] {
			off = append(off, g)
		}
	}
	slices.Sort(on)
	slices.Sort(off)
	for _, g := range on {
		r.regionPresent[g] = true
		r.OnRegionMembership(g, true)
	}
	for _, g := range off {
		delete(r.regionPresent, g)
		r.OnRegionMembership(g, false)
	}
}

func (r *Router) handleJoinPrune(in *netsim.Iface, body []byte) {
	m := &r.jpDec
	if err := pimmsg.UnmarshalJoinPruneInto(m, body); err != nil {
		return
	}
	mine := m.UpstreamNeighbor == in.Addr
	for _, grp := range m.Groups {
		for _, a := range grp.Prunes {
			e := r.MFIB.SG(a.Addr, grp.Group)
			if e == nil {
				continue
			}
			if mine {
				r.schedulePrune(e, in, grp.Group)
			} else if in.Link != nil && in.Link.IsLAN() {
				// Overheard on the LAN: override if we still depend on it.
				if e.IIF == in && !e.OIFEmpty(r.now()) {
					r.sendJoinOverride(in, m.UpstreamNeighbor, grp.Group, a.Addr)
				}
			}
		}
		for _, a := range grp.Joins {
			e := r.MFIB.SG(a.Addr, grp.Group)
			if e == nil || !mine {
				continue
			}
			// A join (override) cancels a pending prune and restores the oif.
			e.AddOIF(in, infiniteExpiry)
		}
	}
}

func (r *Router) schedulePrune(e *mfib.Entry, in *netsim.Iface, g addr.IP) {
	if r.hasMember(in, g) {
		return
	}
	key := e.Key
	apply := func(cur *mfib.Entry) {
		cur.RemoveOIF(in)
		r.after(r.Cfg.PruneHoldTime, func() {
			// Grow back.
			if c := r.MFIB.Get(key); c != nil && in.Up() && !r.assertLoser[key][in.Index] {
				c.AddOIF(in, infiniteExpiry)
				delete(r.prunedUpstream, key)
			}
		})
		r.maybePruneUpstream(cur)
	}
	if in.Link != nil && in.Link.IsLAN() {
		o := e.OIF(in.Index)
		if o == nil {
			return
		}
		o.PrunePending = true
		o.PruneDeadline = r.now() + r.Cfg.PruneOverrideDelay
		e.Touch()
		// Re-look the entry up at fire time: entry/oif pointers must not be
		// held across the delay (the flat store recycles slots), and a join
		// override in the window clears PrunePending, cancelling the prune.
		life := e.Life()
		r.after(r.Cfg.PruneOverrideDelay, func() {
			cur := r.MFIB.Get(key)
			if cur == nil || cur.Life() != life {
				return
			}
			if co := cur.OIF(in.Index); co != nil && co.PrunePending && r.now() >= co.PruneDeadline {
				apply(cur)
			}
		})
		return
	}
	apply(e)
}

func (r *Router) sendJoinOverride(out *netsim.Iface, upstream, g, s addr.IP) {
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: upstream,
		HoldTime:         uint16(r.Cfg.PruneHoldTime / netsim.Second),
		Groups:           []pimmsg.GroupRecord{{Group: g, Joins: []pimmsg.Addr{{Addr: s}}}},
	}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeJoinPrune)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	r.Node.Send(out, r.enc.Packet(out.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
	r.Metrics.Inc(metrics.CtrlJoinPrune)
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.JoinPruneSend, Router: r.Node.ID,
			Iface: out.Index, Epoch: r.epoch, Source: s, Group: g, Value: 1,
		})
	}
}

func (r *Router) handleGraft(in *netsim.Iface, from addr.IP, body []byte) {
	m := &r.jpDec
	if err := pimmsg.UnmarshalJoinPruneInto(m, body); err != nil || m.UpstreamNeighbor != in.Addr {
		return
	}
	// Ack hop-by-hop.
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeGraftAck)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	r.Node.Send(in, r.enc.Packet(in.Addr, from, packet.ProtoPIM, 1), from)
	for _, grp := range m.Groups {
		for _, a := range grp.Joins {
			e := r.MFIB.SG(a.Addr, grp.Group)
			if e == nil {
				continue
			}
			e.AddOIF(in, infiniteExpiry)
			if r.prunedUpstream[e.Key] {
				r.sendGraft(e)
				delete(r.prunedUpstream, e.Key)
			}
		}
	}
}

// pendingGraft tracks one unacked graft awaiting retransmission.
type pendingGraft struct {
	timer   *netsim.Timer
	backoff netsim.Time
}

// sendGraft transmits a graft and arms retransmission: the graft is the one
// acknowledged message in dense mode, re-sent with doubling backoff until
// the upstream acks it (handleGraftAck) or the entry stops wanting traffic.
func (r *Router) sendGraft(e *mfib.Entry) {
	if !r.transmitGraft(e) {
		return
	}
	r.armGraftRetry(e.Key, r.Cfg.GraftRetry)
}

func (r *Router) transmitGraft(e *mfib.Entry) bool {
	if e.IIF == nil || e.UpstreamNeighbor == 0 || !e.IIF.Up() {
		return false
	}
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: e.UpstreamNeighbor,
		Groups: []pimmsg.GroupRecord{{
			Group: e.Key.Group,
			Joins: []pimmsg.Addr{{Addr: e.Key.Source}},
		}},
	}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeGraft)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	r.Node.Send(e.IIF, r.enc.Packet(e.IIF.Addr, e.UpstreamNeighbor, packet.ProtoPIM, 1), e.UpstreamNeighbor)
	r.Metrics.Inc(metrics.CtrlGraft)
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.GraftSend, Router: r.Node.ID,
			Iface: e.IIF.Index, Epoch: r.epoch,
			Source: e.Key.Source, Group: e.Key.Group,
		})
	}
	return true
}

func (r *Router) armGraftRetry(key mfib.Key, backoff netsim.Time) {
	if prev := r.pendingGrafts[key]; prev != nil {
		prev.timer.Stop()
	}
	p := &pendingGraft{backoff: backoff}
	p.timer = r.after(backoff, func() {
		if r.pendingGrafts[key] != p {
			return
		}
		e := r.MFIB.Get(key)
		if e == nil || e.OIFEmpty(r.now()) {
			delete(r.pendingGrafts, key)
			return
		}
		if !r.transmitGraft(e) {
			delete(r.pendingGrafts, key)
			return
		}
		next := p.backoff * 2
		if max := 8 * r.Cfg.GraftRetry; next > max {
			next = max
		}
		r.armGraftRetry(key, next)
	})
	r.pendingGrafts[key] = p
}

// handleGraftAck clears retransmission state for every (S,G) the upstream
// echoed back in the ack.
func (r *Router) handleGraftAck(in *netsim.Iface, body []byte) {
	m := &r.jpDec
	if err := pimmsg.UnmarshalJoinPruneInto(m, body); err != nil {
		return
	}
	for _, grp := range m.Groups {
		for _, a := range grp.Joins {
			key := mfib.Key{Source: a.Addr, Group: grp.Group}
			if p := r.pendingGrafts[key]; p != nil {
				p.timer.Stop()
				delete(r.pendingGrafts, key)
			}
		}
	}
}

func (r *Router) maybePruneUpstream(e *mfib.Entry) {
	if !e.OIFEmpty(r.now()) || r.prunedUpstream[e.Key] {
		return
	}
	if r.ExternalInterest != nil && r.ExternalInterest(e.Key.Source, e.Key.Group) {
		return
	}
	if e.UpstreamNeighbor == 0 || e.IIF == nil || !e.IIF.Up() {
		return
	}
	m := &pimmsg.JoinPrune{
		UpstreamNeighbor: e.UpstreamNeighbor,
		HoldTime:         uint16(r.Cfg.PruneHoldTime / netsim.Second),
		Groups: []pimmsg.GroupRecord{{
			Group:  e.Key.Group,
			Prunes: []pimmsg.Addr{{Addr: e.Key.Source}},
		}},
	}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeJoinPrune)
	r.enc.Buf = m.MarshalTo(r.enc.Buf)
	r.Node.Send(e.IIF, r.enc.Packet(e.IIF.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
	r.Metrics.Inc(metrics.CtrlPrune)
	if r.tel != nil {
		r.tel.Publish(telemetry.Event{
			At: r.now(), Kind: telemetry.PruneSend, Router: r.Node.ID,
			Iface: e.IIF.Index, Epoch: r.epoch,
			Source: e.Key.Source, Group: e.Key.Group,
		})
	}
	r.prunedUpstream[e.Key] = true
	key := e.Key
	r.after(r.Cfg.PruneHoldTime, func() {
		delete(r.prunedUpstream, key)
	})
}

// --- Assert (LAN duplicate forwarder election) ---

// handleAssert resolves a parallel-forwarder conflict: the router with the
// lower metric to the source keeps the LAN oif; ties break to the higher
// address.
func (r *Router) handleAssert(in *netsim.Iface, from addr.IP, body []byte) {
	a, err := pimmsg.UnmarshalAssert(body)
	if err != nil {
		return
	}
	e := r.MFIB.SG(a.Source, a.Group)
	if e == nil {
		return
	}
	o := e.OIF(in.Index)
	if o == nil || !o.Live(r.now()) {
		return
	}
	my := r.metricTo(a.Source)
	if my > int64(a.Metric) || (my == int64(a.Metric) && in.Addr < from) {
		// We lose: stop forwarding onto this LAN until state rebuilds.
		e.RemoveOIF(in)
		key := e.Key
		if r.assertLoser[key] == nil {
			r.assertLoser[key] = map[int]bool{}
		}
		r.assertLoser[key][in.Index] = true
		r.after(r.Cfg.PruneHoldTime, func() {
			delete(r.assertLoser[key], in.Index)
		})
	}
}

func (r *Router) sendAssert(out *netsim.Iface, s, g addr.IP) {
	a := pimmsg.Assert{Group: g, Source: s, Metric: uint32(r.metricTo(s))}
	r.enc.Buf = pimmsg.AppendEnvelope(r.enc.Buf[:0], pimmsg.TypeAssert)
	r.enc.Buf = a.MarshalTo(r.enc.Buf)
	r.Node.Send(out, r.enc.Packet(out.Addr, addr.AllRouters, packet.ProtoPIM, 1), 0)
	r.Metrics.Inc(metrics.CtrlAssert)
}

func (r *Router) metricTo(s addr.IP) int64 {
	rt, ok := r.rpfc.Lookup(s)
	if !ok {
		return 1 << 30
	}
	return rt.Metric
}

// --- Data plane ---

func (r *Router) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() || g.IsLinkLocalMulticast() {
		return
	}
	s := pkt.Src
	now := r.now()
	srcLocal := in.Addr != 0 && unicast.LinkPrefix(in.Addr).Contains(s)
	var iif *netsim.Iface
	var upstream addr.IP
	if !srcLocal {
		rt, ok := r.rpfc.Lookup(s)
		if !ok {
			r.Metrics.Inc(metrics.DataDropped)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.NoState, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
				})
			}
			return
		}
		iif, upstream = rt.Iface, rt.NextHop
		if in != iif {
			// A data packet arriving on one of our outgoing interfaces
			// means a parallel forwarder exists on that LAN: assert.
			if e := r.MFIB.SG(s, g); e != nil && e.HasOIF(in, now) &&
				in.Link != nil && in.Link.IsLAN() {
				r.sendAssert(in, s, g)
			}
			r.Metrics.Inc(metrics.DataDropped)
			if r.tel != nil {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.RPFDrop, Router: r.Node.ID,
					Iface: in.Index, Epoch: r.epoch, Source: s, Group: g,
				})
			}
			return
		}
	} else {
		iif = in
	}
	e := r.MFIB.SG(s, g)
	if e == nil {
		e, _ = r.MFIB.Upsert(mfib.Key{Source: s, Group: g}, now)
		e.IIF, e.UpstreamNeighbor = iif, upstream
		if srcLocal {
			e.UpstreamNeighbor = 0
		}
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.EntryCreate, Router: r.Node.ID, Iface: -1,
				Epoch: r.epoch, Source: s, Group: g, Value: telemetry.EntrySG,
			})
			if !srcLocal {
				r.tel.Publish(telemetry.Event{
					At: now, Kind: telemetry.IIFSet, Router: r.Node.ID,
					Iface: iif.Index, Epoch: r.epoch, Source: s, Group: g,
					Value: telemetry.EntrySG,
				})
			}
		}
		for _, ifc := range r.Node.Ifaces {
			if ifc == in || !ifc.Up() || ifc.Addr == 0 || !r.inScope(ifc) {
				continue
			}
			if r.isLeaf(ifc) {
				if r.hasMember(ifc, g) {
					e.AddLocalOIF(ifc)
				}
				continue
			}
			e.AddOIF(ifc, infiniteExpiry)
		}
	}
	oifs := e.ForwardOIFs(now, in)
	if len(oifs) == 0 {
		r.maybePruneUpstream(e)
		return
	}
	fwd, ok := pkt.Forwarded()
	if !ok {
		return
	}
	for _, out := range oifs {
		r.Node.Send(out, fwd, 0)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.tel != nil {
			r.tel.Publish(telemetry.Event{
				At: now, Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: out.Index, Epoch: r.epoch, Source: s, Group: g,
			})
		}
	}
}

// HandlePIMPacket is the exported PIM control entry point for border-router
// multiplexing (internal/border).
func (r *Router) HandlePIMPacket(in *netsim.Iface, pkt *packet.Packet) { r.handlePIM(in, pkt) }

// HandleDataPacket is the exported data-plane entry point (see
// HandlePIMPacket).
func (r *Router) HandleDataPacket(in *netsim.Iface, pkt *packet.Packet) { r.handleData(in, pkt) }
