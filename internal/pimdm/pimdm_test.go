package pimdm_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/igmp"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/pimdm"
	"pim/internal/scenario"
	"pim/internal/topology"
	"pim/internal/unicast"
)

func lineSim(t *testing.T, hold netsim.Time) (*scenario.Sim, *scenario.PIMDMDeployment, *igmp.Host, *igmp.Host) {
	t.Helper()
	g := topology.New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 1)
	}
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(3)
	sim.FinishUnicast(scenario.UseOracle)
	dep := sim.Deploy(scenario.DenseMode, scenario.WithDenseConfig(pimdm.Config{PruneHoldTime: hold})).(*scenario.PIMDMDeployment)
	sim.Run(2 * netsim.Second)
	return sim, dep, receiver, sender
}

func TestFloodAndDeliver(t *testing.T) {
	sim, _, receiver, sender := lineSim(t, 0)
	g := addr.GroupForIndex(0)
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, g, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[g]; got < 4 {
		t.Fatalf("receiver got %d packets", got)
	}
}

func TestPruneQuietsNoMemberTree(t *testing.T) {
	sim, _, _, sender := lineSim(t, 600*netsim.Second)
	g := addr.GroupForIndex(0)
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	flood := sim.Net.Stats.Totals.DataPackets
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	if extra := sim.Net.Stats.Totals.DataPackets - flood; extra > 2 {
		t.Errorf("pruned tree still carried %d packets", extra)
	}
}

func TestGraftRestoresDelivery(t *testing.T) {
	sim, _, receiver, sender := lineSim(t, 600*netsim.Second)
	g := addr.GroupForIndex(0)
	scenario.SendData(sender, g, 64) // flood, then full prune
	sim.Run(2 * netsim.Second)
	receiver.Join(g) // graft chain back to the source
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(2 * netsim.Second)
	if receiver.Received[g] == 0 {
		t.Fatal("graft did not restore delivery")
	}
}

// TestAssertElectsSingleForwarder: two parallel routers feed the same
// transit LAN; after the assert exchange only one forwards, so the receiver
// behind the LAN sees one copy per packet.
func TestAssertElectsSingleForwarder(t *testing.T) {
	// src LAN — A,B (parallel) — shared LAN — C — receiver LAN
	net := netsim.NewNetwork()
	srcNode := net.AddNode("src-host")
	aNode := net.AddNode("A")
	bNode := net.AddNode("B")
	cNode := net.AddNode("C")
	recvNode := net.AddNode("recv-host")

	srcIf := net.AddIface(srcNode, addr.V4(10, 100, 0, 1))
	aSrc := net.AddIface(aNode, addr.V4(10, 100, 0, 2))
	bSrc := net.AddIface(bNode, addr.V4(10, 100, 0, 3))
	net.ConnectLAN(netsim.Millisecond, srcIf, aSrc, bSrc)

	aMid := net.AddIface(aNode, addr.V4(10, 1, 0, 1))
	bMid := net.AddIface(bNode, addr.V4(10, 1, 0, 2))
	cMid := net.AddIface(cNode, addr.V4(10, 1, 0, 3))
	net.ConnectLAN(netsim.Millisecond, aMid, bMid, cMid)

	cRecv := net.AddIface(cNode, addr.V4(10, 100, 9, 254))
	recvIf := net.AddIface(recvNode, addr.V4(10, 100, 9, 1))
	net.Connect(cRecv, recvIf, netsim.Millisecond)

	oracle := unicast.NewOracle(net)
	var routers []*pimdm.Router
	for _, nd := range []*netsim.Node{aNode, bNode, cNode} {
		r := pimdm.New(nd, pimdm.Config{PruneHoldTime: 600 * netsim.Second}, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
		routers = append(routers, r)
	}
	receiver := igmp.NewHost(recvNode, recvIf)
	net.Sched.RunUntil(2 * netsim.Second)
	g := addr.GroupForIndex(0)
	receiver.Join(g)
	net.Sched.RunUntil(4 * netsim.Second)

	send := func() {
		pkt := packet.New(srcIf.Addr, g, packet.ProtoUDP, make([]byte, 64))
		srcNode.Send(srcIf, pkt, 0)
	}
	// First packet: both A and B flood onto the shared LAN; asserts fire.
	send()
	net.Sched.RunUntil(net.Sched.Now() + 2*netsim.Second)
	before := receiver.Received[g]
	// Subsequent packets: exactly one forwarder remains.
	for i := 0; i < 5; i++ {
		send()
		net.Sched.RunUntil(net.Sched.Now() + netsim.Second)
	}
	got := receiver.Received[g] - before
	if got != 5 {
		t.Errorf("receiver got %d copies of 5 packets after assert election", got)
	}
	asserts := routers[0].Metrics.Get("ctrl.assert") + routers[1].Metrics.Get("ctrl.assert")
	if asserts == 0 {
		t.Error("no asserts were exchanged")
	}
}

// TestProtocolIndependentDense runs dense mode over the distance-vector
// substrate, the protocol-independence property that distinguishes PIM-DM
// from DVMRP.
func TestProtocolIndependentDense(t *testing.T) {
	g := topology.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sim := scenario.Build(g)
	receiver := sim.AddHost(0)
	sender := sim.AddHost(2)
	sim.FinishUnicast(scenario.UseDV)
	sim.Run(sim.ConvergenceTime())
	sim.Deploy(scenario.DenseMode)
	sim.Run(2 * netsim.Second)
	grp := addr.GroupForIndex(0)
	receiver.Join(grp)
	sim.Run(2 * netsim.Second)
	for i := 0; i < 4; i++ {
		scenario.SendData(sender, grp, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if receiver.Received[grp] < 3 {
		t.Fatalf("dense mode over DV delivered %d packets", receiver.Received[grp])
	}
}

// TestLANPruneOverride: on a transit LAN, one downstream router's prune is
// overridden by another that still needs the traffic (§3.7 semantics shared
// with sparse mode).
func TestLANPruneOverride(t *testing.T) {
	// src — U — transit LAN — {D1 (no members), D2 (member)}
	net := netsim.NewNetwork()
	srcHost := net.AddNode("src")
	uNode := net.AddNode("u")
	d1Node := net.AddNode("d1")
	d2Node := net.AddNode("d2")
	memHost := net.AddNode("mem")

	srcIf := net.AddIface(srcHost, addr.V4(10, 100, 0, 1))
	uSrc := net.AddIface(uNode, addr.V4(10, 100, 0, 254))
	net.Connect(srcIf, uSrc, netsim.Millisecond)

	uLAN := net.AddIface(uNode, addr.V4(10, 1, 0, 3))
	d1LAN := net.AddIface(d1Node, addr.V4(10, 1, 0, 1))
	d2LAN := net.AddIface(d2Node, addr.V4(10, 1, 0, 2))
	net.ConnectLAN(netsim.Millisecond, uLAN, d1LAN, d2LAN)

	// D1 has a member-less stub; D2 has a member.
	d1Stub := net.AddIface(d1Node, addr.V4(10, 100, 1, 254))
	s1 := net.AddIface(net.AddNode("h1"), addr.V4(10, 100, 1, 1))
	net.Connect(d1Stub, s1, netsim.Millisecond)
	d2Stub := net.AddIface(d2Node, addr.V4(10, 100, 2, 254))
	m2 := net.AddIface(memHost, addr.V4(10, 100, 2, 1))
	net.Connect(d2Stub, m2, netsim.Millisecond)

	oracle := unicast.NewOracle(net)
	group := addr.GroupForIndex(0)
	for _, nd := range []*netsim.Node{uNode, d1Node, d2Node} {
		r := pimdm.New(nd, pimdm.Config{PruneHoldTime: 600 * netsim.Second}, oracle.RouterFor(nd))
		q := igmp.NewQuerier(nd)
		q.OnJoin = func(ifc *netsim.Iface, g addr.IP) { r.LocalJoin(ifc, g) }
		q.OnLeave = func(ifc *netsim.Iface, g addr.IP) { r.LocalLeave(ifc, g) }
		r.Start()
		q.Start()
	}
	member := igmp.NewHost(memHost, m2)
	net.Sched.RunUntil(2 * netsim.Second)
	member.Join(group)
	net.Sched.RunUntil(4 * netsim.Second)

	send := func() {
		pkt := packet.New(srcIf.Addr, group, packet.ProtoUDP, make([]byte, 64))
		srcHost.Send(srcIf, pkt, 0)
	}
	// First packet floods the LAN; D1 (no members, leaf stub) prunes; D2
	// must override so U keeps forwarding onto the LAN.
	send()
	net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Second)
	before := member.Received[group]
	for i := 0; i < 5; i++ {
		send()
		net.Sched.RunUntil(net.Sched.Now() + netsim.Second)
	}
	if got := member.Received[group] - before; got != 5 {
		t.Errorf("member got %d of 5 after prune/override on the LAN", got)
	}
}
