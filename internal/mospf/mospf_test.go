package mospf_test

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
	"pim/internal/scenario"
	"pim/internal/topology"
)

// build wires a diamond with an extra tail: 0-1-3, 0-2-3, 3-4.
func build(t *testing.T) (*scenario.Sim, *scenario.MOSPFDeployment) {
	t.Helper()
	g := topology.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 5) // slower branch
	g.AddEdge(3, 4, 1)
	sim := scenario.Build(g)
	for i := 0; i < 5; i++ {
		sim.AddHost(i)
	}
	sim.FinishUnicast(scenario.UseOracle) // hosts/others may still need tables
	dep := sim.Deploy(scenario.MOSPFMode).(*scenario.MOSPFDeployment)
	sim.Run(netsim.Second)
	return sim, dep
}

func TestMembershipFloodsEverywhere(t *testing.T) {
	sim, dep := build(t)
	g := addr.GroupForIndex(0)
	sim.Hosts[4][0].Join(g)
	sim.Run(2 * netsim.Second)
	// Every router in the domain stores the membership row — the paper's
	// §1.1 scaling critique made visible.
	for i, r := range dep.Routers {
		if r.MembershipRows() != 1 {
			t.Errorf("router %d stores %d membership rows, want 1", i, r.MembershipRows())
		}
	}
}

func TestDeliveryOverShortestPath(t *testing.T) {
	sim, _ := build(t)
	g := addr.GroupForIndex(0)
	receiver := sim.Hosts[4][0]
	sender := sim.Hosts[0][0]
	receiver.Join(g)
	sim.Run(2 * netsim.Second)
	sim.Net.Stats.Reset()
	for i := 0; i < 5; i++ {
		scenario.SendData(sender, g, 64)
		sim.Run(500 * netsim.Millisecond)
	}
	if got := receiver.Received[g]; got != 5 {
		t.Fatalf("receiver got %d packets, want exactly 5 (no duplicates)", got)
	}
	// The fast branch 0-1-3 must carry the flow; the slow branch 0-2-3 not.
	fast := sim.Net.Stats.PerLink[sim.EdgeLinks[0].ID].DataPackets +
		sim.Net.Stats.PerLink[sim.EdgeLinks[2].ID].DataPackets
	slow := sim.Net.Stats.PerLink[sim.EdgeLinks[1].ID].DataPackets +
		sim.Net.Stats.PerLink[sim.EdgeLinks[3].ID].DataPackets
	if fast == 0 || slow != 0 {
		t.Errorf("fast-branch packets %d, slow-branch %d", fast, slow)
	}
}

func TestSPFRunsAreCountedAndCached(t *testing.T) {
	sim, dep := build(t)
	g := addr.GroupForIndex(0)
	sim.Hosts[4][0].Join(g)
	sim.Run(2 * netsim.Second)
	sender := sim.Hosts[0][0]
	for i := 0; i < 10; i++ {
		scenario.SendData(sender, g, 64)
		sim.Run(200 * netsim.Millisecond)
	}
	var spf int64
	for _, r := range dep.Routers {
		spf += r.Metrics.Get("proc.spf")
	}
	if spf == 0 {
		t.Fatal("no SPF runs counted")
	}
	// The forwarding cache must amortize: far fewer SPF runs than
	// packets×routers.
	if spf > 10 {
		t.Errorf("SPF runs = %d, cache ineffective", spf)
	}
}

func TestMembershipChangeInvalidatesCache(t *testing.T) {
	sim, _ := build(t)
	g := addr.GroupForIndex(0)
	r4 := sim.Hosts[4][0]
	r1 := sim.Hosts[1][0]
	r4.Join(g)
	sim.Run(2 * netsim.Second)
	sender := sim.Hosts[0][0]
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	if r4.Received[g] != 1 {
		t.Fatalf("first phase delivery failed: %d", r4.Received[g])
	}
	// A new member joins on another branch: trees must be recomputed so it
	// receives subsequent packets.
	r1.Join(g)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	if r1.Received[g] != 1 {
		t.Errorf("new member missed post-join packet: %d", r1.Received[g])
	}
	if r4.Received[g] != 2 {
		t.Errorf("old member lost delivery after cache invalidation: %d", r4.Received[g])
	}
}

func TestNoMembersNoForwarding(t *testing.T) {
	sim, dep := build(t)
	g := addr.GroupForIndex(0)
	sender := sim.Hosts[0][0]
	sim.Net.Stats.Reset()
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	// Only the sender's own LAN saw the packet; backbone stayed clean.
	for _, l := range sim.EdgeLinks {
		if n := sim.Net.Stats.PerLink[l.ID].DataPackets; n != 0 {
			t.Errorf("backbone link %d carried %d data packets", l.ID, n)
		}
	}
	if n := dep.Routers[0].Metrics.Get("data.nostate"); n == 0 {
		_ = n // negative-cache entry may swallow it instead; both are fine
	}
}

func TestLeaveRefloodsAndStopsDelivery(t *testing.T) {
	sim, dep := build(t)
	g := addr.GroupForIndex(0)
	r4 := sim.Hosts[4][0]
	sender := sim.Hosts[0][0]
	r4.Join(g)
	sim.Run(2 * netsim.Second)
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	if r4.Received[g] != 1 {
		t.Fatalf("setup delivery failed")
	}
	r4.Leave(g)
	sim.Run(2 * netsim.Second)
	// Membership withdrawal reached every router.
	for i, r := range dep.Routers {
		if r.MembershipRows() != 0 {
			t.Errorf("router %d still stores %d membership rows", i, r.MembershipRows())
		}
	}
	scenario.SendData(sender, g, 64)
	sim.Run(netsim.Second)
	if r4.Received[g] != 1 {
		t.Errorf("delivery after leave: %d", r4.Received[g])
	}
}
