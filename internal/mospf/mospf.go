// Package mospf implements the link-state multicast baseline (Moy's MOSPF,
// the paper's reference [3]): routers flood group-membership LSAs to every
// other router in the domain, and each router computes the shortest-path
// tree from a packet's source on demand with Dijkstra.
//
// The paper's §1.1 critique — "every router must receive and store
// membership information for every group in the domain" and "the processing
// cost of the Dijkstra shortest-path-tree calculations" — is what the
// comparison benchmarks measure here: LSA counts (metrics.CtrlLSA), stored
// membership per router, and SPF runs (metrics.SPFRuns).
//
// Substitution note (DESIGN.md §4): unicast topology is shared through a
// Domain object rather than re-flooded, standing in for the identical OSPF
// link-state databases every MOSPF router would hold; group membership,
// which is the scaling cost under study, travels as real flooded messages.
package mospf

import (
	"encoding/binary"
	"errors"
	"slices"

	"pim/internal/addr"
	"pim/internal/metrics"
	"pim/internal/mfib"
	"pim/internal/netsim"
	"pim/internal/packet"
	"pim/internal/telemetry"
	"pim/internal/topology"
	"pim/internal/unicast"
)

// Domain is the topology view shared by all routers in one MOSPF domain:
// the router-level graph and the interface realizing each graph edge.
type Domain struct {
	Routers []*netsim.Node
	index   map[*netsim.Node]int
	Graph   *topology.Graph
	// edgeIfaces[e] are the two interfaces of graph edge e, ordered (A,B).
	edgeIfaces [][2]*netsim.Iface
	// sp caches per-source Dijkstra results (the "forwarding cache"
	// amortization MOSPF performs); invalidated on membership change.
	sp map[int]*topology.ShortestPaths
	// solver holds the reusable Dijkstra scratch buffers shared by every
	// SPF run in the domain — membership churn triggers recomputation for
	// each active source, and refilling warm buffers beats reallocating
	// heap and distance arrays per run.
	solver *topology.SPSolver
}

// NewDomain derives the router graph from the live links joining the given
// routers.
func NewDomain(routers []*netsim.Node) *Domain {
	d := &Domain{Routers: routers, index: map[*netsim.Node]int{}}
	for i, nd := range routers {
		d.index[nd] = i
	}
	d.Graph = topology.New(len(routers))
	seen := map[*netsim.Link]bool{}
	for i, nd := range routers {
		for _, ifc := range nd.Ifaces {
			l := ifc.Link
			if l == nil || seen[l] {
				continue
			}
			for _, peer := range l.Ifaces {
				j, ok := d.index[peer.Node]
				if !ok || peer.Node == nd || j < i {
					continue
				}
				e := d.Graph.AddEdge(i, j, int64(l.Delay))
				d.edgeIfaces = append(d.edgeIfaces, [2]*netsim.Iface{ifc, peer})
				_ = e
			}
			seen[l] = true
		}
	}
	d.sp = map[int]*topology.ShortestPaths{}
	d.solver = d.Graph.NewSolver()
	return d
}

// RouterFor locates the router whose connected subnet contains ip, or -1.
func (d *Domain) RouterFor(ip addr.IP) int {
	for i, nd := range d.Routers {
		for _, ifc := range nd.Ifaces {
			if ifc.Addr != 0 && unicast.LinkPrefix(ifc.Addr).Contains(ip) {
				return i
			}
		}
	}
	return -1
}

// ifaceOnEdge returns router r's interface on graph edge e.
func (d *Domain) ifaceOnEdge(r, e int) *netsim.Iface {
	pair := d.edgeIfaces[e]
	if d.index[pair[0].Node] == r {
		return pair[0]
	}
	return pair[1]
}

// membershipLSA is the flooded group-membership advertisement:
//
//	uint32 origin (router index), uint32 seq, uint16 #groups, uint32 group...
type membershipLSA struct {
	Origin uint32
	Seq    uint32
	Groups []addr.IP
}

var errBadLSA = errors.New("mospf: malformed membership LSA")

func (m *membershipLSA) marshal() []byte { return m.marshalTo(make([]byte, 0, 10+4*len(m.Groups))) }

// marshalTo appends the encoded LSA to b (same bytes as marshal).
func (m *membershipLSA) marshalTo(b []byte) []byte {
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], m.Origin)
	binary.BigEndian.PutUint32(hdr[4:], m.Seq)
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(m.Groups)))
	b = append(b, hdr[:]...)
	for _, g := range m.Groups {
		var e [4]byte
		binary.BigEndian.PutUint32(e[0:], uint32(g))
		b = append(b, e[:]...)
	}
	return b
}

// unmarshal decodes into m, reusing the capacity of m.Groups — a reused
// decode scratch makes warm LSA receives allocation-free.
func (m *membershipLSA) unmarshal(b []byte) error {
	if len(b) < 10 {
		return errBadLSA
	}
	m.Origin = binary.BigEndian.Uint32(b)
	m.Seq = binary.BigEndian.Uint32(b[4:])
	n := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 10+4*n {
		return errBadLSA
	}
	m.Groups = m.Groups[:0]
	for i := 0; i < n; i++ {
		m.Groups = append(m.Groups, addr.IP(binary.BigEndian.Uint32(b[10+4*i:])))
	}
	return nil
}

// Router is one MOSPF router instance.
type Router struct {
	Node    *netsim.Node
	Domain  *Domain
	Metrics *metrics.Counters
	MFIB    *mfib.Table // (S,G) forwarding cache

	// RefreshInterval, when nonzero, re-originates this router's membership
	// LSA periodically. Base MOSPF floods only on change; periodic
	// re-origination is what lets the domain recover membership lost to a
	// crashed router or a partitioned flood, so the fault experiments enable
	// it. Zero (the default) keeps the event-driven-only behaviour — and the
	// LSA counts — of the existing overhead ledgers. Set before Start.
	RefreshInterval netsim.Time

	// Telemetry, when non-nil, receives LSA-flood, cache and lifecycle
	// events. Set before Start; nil keeps every emit site a single branch.
	Telemetry *telemetry.Bus

	self int // index in the domain
	// seq is this router's LSA sequence number. It survives Stop/Restart:
	// peers' databases never expire old sequence numbers, so an instance
	// restarting from zero would have its post-restart LSAs discarded as
	// stale forever.
	seq uint32
	// membership[origin][group]: the domain-wide membership database every
	// router stores (the §1.1 scaling cost).
	membership map[uint32]map[addr.IP]bool
	seqs       map[uint32]uint32
	// localMembers[ifaceIndex][group] from IGMP.
	localMembers map[int]map[addr.IP]bool

	started bool
	// epoch invalidates scheduled closures across Stop/Restart (see
	// core.Router).
	epoch uint64

	// enc/dec are the reusable LSA encode/decode scratches (DESIGN.md §13):
	// valid only within one flood/handleLSA call.
	enc packet.Scratch
	dec membershipLSA
}

// New builds an MOSPF router within a domain.
func New(nd *netsim.Node, d *Domain) *Router {
	return &Router{
		Node: nd, Domain: d,
		Metrics:      metrics.New(),
		MFIB:         mfib.NewTable(),
		self:         d.index[nd],
		membership:   map[uint32]map[addr.IP]bool{},
		seqs:         map[uint32]uint32{},
		localMembers: map[int]map[addr.IP]bool{},
	}
}

// Start registers handlers and, when RefreshInterval is set, begins
// periodic LSA re-origination.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.Telemetry != nil {
		r.Telemetry.Publish(telemetry.Event{
			At: r.Node.Sched().Now(), Kind: telemetry.EpochStart,
			Router: r.Node.ID, Iface: -1, Epoch: r.epoch, Value: int64(r.StateCount()),
		})
	}
	r.Node.Handle(packet.ProtoMOSPF, netsim.HandlerFunc(r.handleLSA))
	r.Node.Handle(packet.ProtoUDP, netsim.HandlerFunc(r.handleData))
	if r.RefreshInterval > 0 {
		var refresh func()
		refresh = func() {
			r.originate()
			r.after(r.RefreshInterval, refresh)
		}
		r.after(0, refresh)
	}
}

// Stop detaches the router and discards its soft state: the forwarding
// cache, the stored domain-wide membership database, peer sequence numbers,
// and local membership. The router's own LSA sequence number is kept (see
// its field comment). The shared Domain Dijkstra cache is also dropped so
// no tree computed with the dead router's membership view survives.
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	if r.Telemetry != nil {
		r.Telemetry.Publish(telemetry.Event{
			At: r.Node.Sched().Now(), Kind: telemetry.EpochEnd,
			Router: r.Node.ID, Iface: -1, Epoch: r.epoch,
		})
	}
	r.epoch++
	r.Node.Handle(packet.ProtoMOSPF, nil)
	r.Node.Handle(packet.ProtoUDP, nil)
	r.MFIB = mfib.NewTable()
	r.membership = map[uint32]map[addr.IP]bool{}
	r.seqs = map[uint32]uint32{}
	r.localMembers = map[int]map[addr.IP]bool{}
	r.Domain.sp = map[int]*topology.ShortestPaths{}
}

// Restart brings a stopped router back empty; with RefreshInterval set the
// domain's databases reconverge from periodic re-origination.
func (r *Router) Restart() {
	r.Stop()
	r.Start()
}

// after schedules fn under the current epoch: a Stop/Restart before the
// timer fires makes the closure a no-op.
func (r *Router) after(d netsim.Time, fn func()) *netsim.Timer {
	ep := r.epoch
	return r.Node.Sched().After(d, func() {
		if r.epoch == ep {
			if r.Telemetry != nil {
				r.Telemetry.Publish(telemetry.Event{
					At: r.Node.Sched().Now(), Kind: telemetry.TimerFire,
					Router: r.Node.ID, Iface: -1, Epoch: ep,
				})
			}
			fn()
		}
	})
}

// StateCount returns forwarding cache entries plus stored membership rows —
// both components of MOSPF's per-router state.
func (r *Router) StateCount() int {
	n := r.MFIB.Len()
	for _, groups := range r.membership {
		n += len(groups)
	}
	return n
}

// MembershipRows returns only the stored foreign-membership count.
func (r *Router) MembershipRows() int {
	n := 0
	for _, groups := range r.membership {
		n += len(groups)
	}
	return n
}

// --- Membership flooding ---

// LocalJoin records a member and floods an updated membership LSA.
func (r *Router) LocalJoin(ifc *netsim.Iface, g addr.IP) {
	byGroup := r.localMembers[ifc.Index]
	if byGroup == nil {
		byGroup = map[addr.IP]bool{}
		r.localMembers[ifc.Index] = byGroup
	}
	byGroup[g] = true
	r.originate()
}

// LocalLeave removes a member and floods.
func (r *Router) LocalLeave(ifc *netsim.Iface, g addr.IP) {
	if byGroup := r.localMembers[ifc.Index]; byGroup != nil {
		delete(byGroup, g)
	}
	r.originate()
}

func (r *Router) localGroups() []addr.IP {
	set := map[addr.IP]bool{}
	for _, byGroup := range r.localMembers {
		for g := range byGroup {
			set[g] = true
		}
	}
	out := make([]addr.IP, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	slices.Sort(out)
	return out
}

func (r *Router) originate() {
	r.seq++
	lsa := &membershipLSA{Origin: uint32(r.self), Seq: r.seq, Groups: r.localGroups()}
	r.install(lsa)
	r.flood(lsa, nil)
}

func (r *Router) handleLSA(in *netsim.Iface, pkt *packet.Packet) {
	lsa := &r.dec
	if err := lsa.unmarshal(pkt.Payload); err != nil {
		return
	}
	if lsa.Origin == uint32(r.self) {
		return
	}
	if cur, ok := r.seqs[lsa.Origin]; ok && int32(lsa.Seq-cur) <= 0 {
		return
	}
	r.install(lsa)
	r.flood(lsa, in)
}

func (r *Router) install(lsa *membershipLSA) {
	r.seqs[lsa.Origin] = lsa.Seq
	groups := map[addr.IP]bool{}
	for _, g := range lsa.Groups {
		groups[g] = true
	}
	r.membership[lsa.Origin] = groups
	// Membership changed: drop cached trees (they will be recomputed on
	// the next data packet) and any shared Dijkstra cache.
	if r.Telemetry != nil {
		now := r.Node.Sched().Now()
		r.MFIB.ForEach(func(e *mfib.Entry) {
			r.Telemetry.Publish(telemetry.Event{
				At: now, Kind: telemetry.EntryExpire, Router: r.Node.ID,
				Iface: -1, Epoch: r.epoch, Source: e.Key.Source, Group: e.Key.Group,
				Value: telemetry.EntrySG,
			})
		})
	}
	r.MFIB = mfib.NewTable()
	r.Domain.sp = map[int]*topology.ShortestPaths{}
}

func (r *Router) flood(lsa *membershipLSA, except *netsim.Iface) {
	r.enc.Buf = lsa.marshalTo(r.enc.Buf[:0])
	for _, ifc := range r.Node.Ifaces {
		if ifc == except || !ifc.Up() || ifc.Addr == 0 {
			continue
		}
		r.Node.Send(ifc, r.enc.Packet(ifc.Addr, addr.AllRouters, packet.ProtoMOSPF, 1), 0)
		r.Metrics.Inc(metrics.CtrlLSA)
		if r.Telemetry != nil {
			r.Telemetry.Publish(telemetry.Event{
				At: r.Node.Sched().Now(), Kind: telemetry.LSAFlood,
				Router: r.Node.ID, Iface: ifc.Index, Epoch: r.epoch,
				Value: int64(len(lsa.Groups)),
			})
		}
	}
}

// memberRouters returns the domain routers with members of g (per the
// flooded database plus local knowledge).
func (r *Router) memberRouters(g addr.IP) []int {
	var out []int
	for origin, groups := range r.membership {
		if groups[g] {
			out = append(out, int(origin))
		}
	}
	has := false
	for _, byGroup := range r.localMembers {
		if byGroup[g] {
			has = true
			break
		}
	}
	if has {
		found := false
		for _, o := range out {
			if o == r.self {
				found = true
			}
		}
		if !found {
			out = append(out, r.self)
		}
	}
	slices.Sort(out)
	return out
}

// --- Data plane: on-demand SPT computation (§1.1) ---

func (r *Router) handleData(in *netsim.Iface, pkt *packet.Packet) {
	g := pkt.Dst
	if !g.IsMulticast() || g.IsLinkLocalMulticast() {
		return
	}
	s := pkt.Src
	e := r.MFIB.SG(s, g)
	if e == nil {
		e = r.computeEntry(s, g)
		if e == nil {
			r.Metrics.Inc(metrics.DataNoState)
			if r.Telemetry != nil {
				r.Telemetry.Publish(telemetry.Event{
					At: r.Node.Sched().Now(), Kind: telemetry.NoState,
					Router: r.Node.ID, Iface: in.Index, Epoch: r.epoch,
					Source: s, Group: g,
				})
			}
			return
		}
	}
	srcLocal := in.Addr != 0 && unicast.LinkPrefix(in.Addr).Contains(s)
	if e.IIF != nil && in != e.IIF && !srcLocal {
		r.Metrics.Inc(metrics.DataDropped)
		if r.Telemetry != nil {
			r.Telemetry.Publish(telemetry.Event{
				At: r.Node.Sched().Now(), Kind: telemetry.RPFDrop,
				Router: r.Node.ID, Iface: in.Index, Epoch: r.epoch,
				Source: s, Group: g,
			})
		}
		return
	}
	now := r.Node.Sched().Now()
	fwd, ok := pkt.Forwarded()
	if !ok {
		return
	}
	for _, out := range e.ForwardOIFs(now, in) {
		r.Node.Send(out, fwd, 0)
		r.Metrics.Inc(metrics.DataForwarded)
		if r.Telemetry != nil {
			r.Telemetry.Publish(telemetry.Event{
				At: now, Kind: telemetry.DataForward, Router: r.Node.ID,
				Iface: out.Index, Epoch: r.epoch, Source: s, Group: g,
			})
		}
	}
}

// computeEntry runs (or reuses) the source-rooted Dijkstra and derives this
// router's (S,G) forwarding cache entry.
func (r *Router) computeEntry(s, g addr.IP) *mfib.Entry {
	src := r.Domain.RouterFor(s)
	if src < 0 {
		return nil
	}
	members := r.memberRouters(g)
	if len(members) == 0 {
		// Negative cache: remember that this source/group pair has no
		// members so each packet does not recompute.
		e, created := r.MFIB.Upsert(mfib.Key{Source: s, Group: g}, r.Node.Sched().Now())
		if created && r.Telemetry != nil {
			r.Telemetry.Publish(telemetry.Event{
				At: r.Node.Sched().Now(), Kind: telemetry.EntryCreate,
				Router: r.Node.ID, Iface: -1, Epoch: r.epoch,
				Source: s, Group: g, Value: telemetry.EntrySG,
			})
		}
		return e
	}
	sp := r.Domain.sp[src]
	if sp == nil {
		sp = r.Domain.solver.Solve(src)
		r.Domain.sp[src] = sp
		r.Metrics.Inc(metrics.SPFRuns)
	}
	tree := r.Domain.Graph.SPTreeFromSP(sp, members)
	now := r.Node.Sched().Now()
	e, created := r.MFIB.Upsert(mfib.Key{Source: s, Group: g}, now)
	if created && r.Telemetry != nil {
		r.Telemetry.Publish(telemetry.Event{
			At: now, Kind: telemetry.EntryCreate, Router: r.Node.ID,
			Iface: -1, Epoch: r.epoch, Source: s, Group: g, Value: telemetry.EntrySG,
		})
	}
	if !tree.InTree[r.self] {
		return e // off-tree: entry with no oifs (packets dropped cheaply)
	}
	if pe := tree.ParentEdge[r.self]; pe >= 0 {
		e.IIF = r.Domain.ifaceOnEdge(r.self, pe)
		e.Touch()
	}
	// Children: tree nodes whose parent is self.
	for v := 0; v < r.Domain.Graph.N(); v++ {
		if tree.InTree[v] && tree.Parent[v] == r.self {
			e.AddOIF(r.Domain.ifaceOnEdge(r.self, tree.ParentEdge[v]), 1<<60)
		}
	}
	// Local member LANs.
	for idx, byGroup := range r.localMembers {
		if byGroup[g] {
			e.AddLocalOIF(r.Node.Ifaces[idx])
		}
	}
	return e
}
