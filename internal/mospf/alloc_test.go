package mospf

import (
	"testing"

	"pim/internal/addr"
	"pim/internal/netsim"
)

// TestLSAFloodZeroAlloc pins the warm LSA wire path — marshal into the
// router's scratch, pooled transmit frame, delivery, into-decode, sequence
// check — at zero heap allocations per cycle. The flooded LSA carries the
// originator's current sequence number, so the receiver's duplicate check
// discards it after the decode: exactly the steady-state cost of a periodic
// re-origination that changed nothing. (See the core engine's twin for the
// warm-up rationale.)
func TestLSAFloodZeroAlloc(t *testing.T) {
	prev := netsim.SetFramePool(true)
	defer netsim.SetFramePool(prev)

	net := netsim.NewNetwork()
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ia := net.AddIface(na, addr.V4(10, 0, 0, 1))
	ib := net.AddIface(nb, addr.V4(10, 0, 0, 2))
	net.Connect(ia, ib, netsim.Millisecond)

	dom := NewDomain([]*netsim.Node{na, nb})
	ra := New(na, dom)
	rb := New(nb, dom)
	ra.Start()
	rb.Start()
	g := addr.GroupForIndex(0)
	ra.LocalJoin(ia, g)
	net.Sched.RunUntil(2 * netsim.Second)
	if rb.MembershipRows() == 0 {
		t.Fatal("router b never installed a's membership LSA")
	}

	// Re-flood the already-installed LSA: same origin, same sequence.
	lsa := &membershipLSA{Origin: uint32(ra.self), Seq: ra.seq, Groups: nil}
	cycle := func() {
		ra.flood(lsa, nil)
		net.Sched.RunUntil(net.Sched.Now() + 10*netsim.Millisecond)
	}
	for i := 0; i < 1500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("warm LSA flood cycle: %.2f allocs, want 0", allocs)
	}
}
