package topology

import "pim/internal/parallel"

// Inf is the distance reported for unreachable nodes.
const Inf = int64(1) << 62

// ShortestPaths holds single-source shortest path results: Dist[v] is the
// total delay from the source to v, Parent[v] the predecessor node on one
// shortest path (-1 for the source and unreachable nodes), and ParentEdge[v]
// the index of the edge from Parent[v] to v (-1 likewise).
type ShortestPaths struct {
	Source     int
	Dist       []int64
	Parent     []int
	ParentEdge []int
}

type spItem struct {
	node int
	dist int64
}

// SPSolver runs Dijkstra repeatedly over one graph while reusing its scratch
// state (visited marks and the priority-queue backing array) across runs, so
// the per-run cost is the three result slices — or nothing at all with
// SolveInto. The heap is a hand-rolled binary heap over spItem values: no
// container/heap interface boxing in the hot loop.
//
// A solver is not safe for concurrent use; parallel callers give each worker
// its own solver (see AllPairs).
type SPSolver struct {
	g    *Graph
	done []bool
	heap []spItem
}

// NewSolver returns a reusable Dijkstra solver for g.
func (g *Graph) NewSolver() *SPSolver {
	return &SPSolver{g: g, done: make([]bool, g.n), heap: make([]spItem, 0, g.n+len(g.edges))}
}

// Solve computes single-source shortest paths from src into a freshly
// allocated result (retainable by the caller; scratch state is still
// reused).
func (s *SPSolver) Solve(src int) *ShortestPaths {
	return s.SolveInto(nil, src)
}

// SolveInto is Solve reusing sp's slices when capacity allows; pass nil to
// allocate. Callers that keep no more than one result alive (AllPairs'
// row extraction, RPF lookups) reach zero allocations per run.
func (s *SPSolver) SolveInto(sp *ShortestPaths, src int) *ShortestPaths {
	g := s.g
	n := g.n
	if sp == nil {
		sp = &ShortestPaths{}
	}
	sp.Source = src
	sp.Dist = resizeInt64(sp.Dist, n)
	sp.Parent = resizeInt(sp.Parent, n)
	sp.ParentEdge = resizeInt(sp.ParentEdge, n)
	for i := 0; i < n; i++ {
		sp.Dist[i] = Inf
		sp.Parent[i] = -1
		sp.ParentEdge[i] = -1
	}
	sp.Dist[src] = 0

	if cap(s.done) < n {
		s.done = make([]bool, n)
	}
	done := s.done[:n]
	for i := range done {
		done[i] = false
	}

	h := s.heap[:0]
	h = heapPush(h, spItem{node: src})
	for len(h) > 0 {
		var it spItem
		it, h = heapPop(h)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			u := e.Other(v)
			nd := sp.Dist[v] + e.Delay
			if nd < sp.Dist[u] || (nd == sp.Dist[u] && sp.Parent[u] >= 0 && v < sp.Parent[u] && !done[u]) {
				sp.Dist[u] = nd
				sp.Parent[u] = v
				sp.ParentEdge[u] = ei
				h = heapPush(h, spItem{node: u, dist: nd})
			}
		}
	}
	s.heap = h[:0]
	return sp
}

func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// The heap routines mirror container/heap's sift order exactly (Push then
// up; Pop swaps root with last, sifts down, shrinks) with a dist-only
// comparison, so a solver pops nodes in the same order the previous
// container/heap implementation did — equal-distance tie handling, and with
// it every Parent/ParentEdge choice, is bit-for-bit preserved.

func heapPush(h []spItem, it spItem) []spItem {
	h = append(h, it)
	// Sift up.
	j := len(h) - 1
	for {
		i := (j - 1) / 2
		if i == j || h[i].dist <= h[j].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func heapPop(h []spItem) (spItem, []spItem) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down within h[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if h[j].dist >= h[i].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h[n], h[:n]
}

// Dijkstra computes single-source shortest paths from src. Ties are broken
// toward the lower-numbered parent node so results are deterministic, which
// matters for reproducible RPF checks across routers. Callers running many
// searches over the same graph should hold a NewSolver instead.
func (g *Graph) Dijkstra(src int) *ShortestPaths {
	return g.NewSolver().Solve(src)
}

// PathTo returns the node sequence from the source to dst (inclusive), or
// nil if dst is unreachable.
func (sp *ShortestPaths) PathTo(dst int) []int {
	if sp.Dist[dst] == Inf {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = sp.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs computes shortest-path distances between every node pair by
// running Dijkstra from each node, fanned across every CPU. Suitable for the
// 50-node graphs of the Figure 2 experiments.
func (g *Graph) AllPairs() [][]int64 { return g.AllPairsWorkers(0) }

// AllPairsWorkers is AllPairs with an explicit worker count (0 = GOMAXPROCS,
// 1 = sequential). Each worker reuses one solver and one scratch result;
// output is identical for every worker count because row v depends only on
// the graph and v.
func (g *Graph) AllPairsWorkers(workers int) [][]int64 {
	d := make([][]int64, g.n)
	w := parallel.Workers(workers)
	solvers := make([]*SPSolver, w)
	scratch := make([]*ShortestPaths, w)
	parallel.ForWorker(g.n, workers, func(wk, v int) {
		if solvers[wk] == nil {
			solvers[wk] = g.NewSolver()
		}
		scratch[wk] = solvers[wk].SolveInto(scratch[wk], v)
		row := make([]int64, g.n)
		copy(row, scratch[wk].Dist)
		d[v] = row
	})
	return d
}

// Tree is a rooted tree extracted from a graph: Parent[v] is v's parent node
// (-1 for the root and for nodes not in the tree), ParentEdge[v] the graph
// edge index used, InTree[v] whether v belongs to the tree, and Depth[v] the
// number of tree edges between v and the root (meaningful only when
// InTree[v]).
type Tree struct {
	Root       int
	Parent     []int
	ParentEdge []int
	InTree     []bool
	Depth      []int
	g          *Graph
}

// SPTree builds the shortest-path tree from root spanning the given members:
// the union of one shortest path from root to each member. This is exactly
// the distribution tree that per-source multicast (and CBT's core-rooted
// tree) install. If members is nil the tree spans all reachable nodes.
func (g *Graph) SPTree(root int, members []int) *Tree {
	return g.SPTreeFromSP(g.Dijkstra(root), members)
}

// SPTreeFromSP is SPTree with a precomputed Dijkstra result, letting
// callers that evaluate many member sets from the same root (Figure 2's
// flow counting, MOSPF's per-source caches) amortize the search.
func (g *Graph) SPTreeFromSP(sp *ShortestPaths, members []int) *Tree {
	return g.SPTreeInto(nil, sp, members)
}

// SPTreeInto is SPTreeFromSP reusing t's storage when it is non-nil and
// sized for this graph (otherwise fresh storage is allocated). The Figure 2
// flow counting builds tens of thousands of member trees per trial; reusing
// one scratch Tree removes three slice allocations from each.
func (g *Graph) SPTreeInto(t *Tree, sp *ShortestPaths, members []int) *Tree {
	if t == nil || cap(t.Parent) < g.n {
		t = &Tree{
			Parent:     make([]int, g.n),
			ParentEdge: make([]int, g.n),
			InTree:     make([]bool, g.n),
			Depth:      make([]int, g.n),
		}
	}
	t.Root = sp.Source
	t.g = g
	t.Parent = t.Parent[:g.n]
	t.ParentEdge = t.ParentEdge[:g.n]
	t.InTree = t.InTree[:g.n]
	t.Depth = t.Depth[:g.n]
	for i := range t.Parent {
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
		t.InTree[i] = false
	}
	include := func(v int) {
		// Climb to the first node already in the tree (or past the root),
		// then graft the chain below it, assigning depths top-down.
		anchor := v
		for anchor != -1 && !t.InTree[anchor] {
			anchor = sp.Parent[anchor]
		}
		base := -1 // so the root itself lands at depth 0
		if anchor != -1 {
			base = t.Depth[anchor]
		}
		chain := 0
		for w := v; w != anchor; w = sp.Parent[w] {
			chain++
		}
		for w := v; w != anchor; w = sp.Parent[w] {
			t.InTree[w] = true
			t.Parent[w] = sp.Parent[w]
			t.ParentEdge[w] = sp.ParentEdge[w]
			t.Depth[w] = base + chain
			chain--
		}
	}
	if members == nil {
		for v := 0; v < g.n; v++ {
			if sp.Dist[v] < Inf {
				include(v)
			}
		}
	} else {
		include(t.Root)
		for _, m := range members {
			if sp.Dist[m] < Inf {
				include(m)
			}
		}
	}
	return t
}

// EdgeCount returns the number of edges in the tree.
func (t *Tree) EdgeCount() int {
	c := 0
	for v := range t.Parent {
		if t.InTree[v] && t.Parent[v] != -1 {
			c++
		}
	}
	return c
}

// EdgeIndexes returns the graph edge indexes composing the tree.
func (t *Tree) EdgeIndexes() []int {
	var out []int
	for v := range t.ParentEdge {
		if t.InTree[v] && t.ParentEdge[v] != -1 {
			out = append(out, t.ParentEdge[v])
		}
	}
	return out
}

// DistInTree returns the delay of the unique tree path between a and b, or
// Inf if either is off-tree. Used by the Figure 2(a) delay measurement: the
// delay a receiver sees from a sender through a shared tree.
func (t *Tree) DistInTree(a, b int) int64 {
	if !t.InTree[a] || !t.InTree[b] {
		return Inf
	}
	// Lift the deeper endpoint to the other's depth, then climb both until
	// they meet at the lowest common ancestor. Depth makes the walk
	// allocation-free — the Figure 2(a) measurement calls this for every
	// member pair of every candidate core.
	var d int64
	for t.Depth[a] > t.Depth[b] {
		d += t.g.edges[t.ParentEdge[a]].Delay
		a = t.Parent[a]
	}
	for t.Depth[b] > t.Depth[a] {
		d += t.g.edges[t.ParentEdge[b]].Delay
		b = t.Parent[b]
	}
	for a != b {
		d += t.g.edges[t.ParentEdge[a]].Delay + t.g.edges[t.ParentEdge[b]].Delay
		a = t.Parent[a]
		b = t.Parent[b]
	}
	return d
}

// PathToRoot returns the node sequence from v up to the tree root.
func (t *Tree) PathToRoot(v int) []int {
	if !t.InTree[v] {
		return nil
	}
	var out []int
	for ; v != -1; v = t.Parent[v] {
		out = append(out, v)
	}
	return out
}
