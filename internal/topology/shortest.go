package topology

import "container/heap"

// Inf is the distance reported for unreachable nodes.
const Inf = int64(1) << 62

// ShortestPaths holds single-source shortest path results: Dist[v] is the
// total delay from the source to v, Parent[v] the predecessor node on one
// shortest path (-1 for the source and unreachable nodes), and ParentEdge[v]
// the index of the edge from Parent[v] to v (-1 likewise).
type ShortestPaths struct {
	Source     int
	Dist       []int64
	Parent     []int
	ParentEdge []int
}

type spItem struct {
	node int
	dist int64
}

type spHeap []spItem

func (h spHeap) Len() int            { return len(h) }
func (h spHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths from src. Ties are broken
// toward the lower-numbered parent node so results are deterministic, which
// matters for reproducible RPF checks across routers.
func (g *Graph) Dijkstra(src int) *ShortestPaths {
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]int64, g.n),
		Parent:     make([]int, g.n),
		ParentEdge: make([]int, g.n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Inf
		sp.Parent[i] = -1
		sp.ParentEdge[i] = -1
	}
	sp.Dist[src] = 0
	done := make([]bool, g.n)
	h := &spHeap{{node: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(spItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			u := e.Other(v)
			nd := sp.Dist[v] + e.Delay
			if nd < sp.Dist[u] || (nd == sp.Dist[u] && sp.Parent[u] >= 0 && v < sp.Parent[u] && !done[u]) {
				sp.Dist[u] = nd
				sp.Parent[u] = v
				sp.ParentEdge[u] = ei
				heap.Push(h, spItem{node: u, dist: nd})
			}
		}
	}
	return sp
}

// PathTo returns the node sequence from the source to dst (inclusive), or
// nil if dst is unreachable.
func (sp *ShortestPaths) PathTo(dst int) []int {
	if sp.Dist[dst] == Inf {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = sp.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs computes shortest-path distances between every node pair by
// running Dijkstra from each node. Suitable for the 50-node graphs of the
// Figure 2 experiments.
func (g *Graph) AllPairs() [][]int64 {
	d := make([][]int64, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.Dijkstra(v).Dist
	}
	return d
}

// Tree is a rooted tree extracted from a graph: Parent[v] is v's parent node
// (-1 for the root and for nodes not in the tree), ParentEdge[v] the graph
// edge index used, and InTree[v] whether v belongs to the tree.
type Tree struct {
	Root       int
	Parent     []int
	ParentEdge []int
	InTree     []bool
	g          *Graph
}

// SPTree builds the shortest-path tree from root spanning the given members:
// the union of one shortest path from root to each member. This is exactly
// the distribution tree that per-source multicast (and CBT's core-rooted
// tree) install. If members is nil the tree spans all reachable nodes.
func (g *Graph) SPTree(root int, members []int) *Tree {
	return g.SPTreeFromSP(g.Dijkstra(root), members)
}

// SPTreeFromSP is SPTree with a precomputed Dijkstra result, letting
// callers that evaluate many member sets from the same root (Figure 2's
// flow counting, MOSPF's per-source caches) amortize the search.
func (g *Graph) SPTreeFromSP(sp *ShortestPaths, members []int) *Tree {
	root := sp.Source
	t := &Tree{
		Root:       root,
		Parent:     make([]int, g.n),
		ParentEdge: make([]int, g.n),
		InTree:     make([]bool, g.n),
		g:          g,
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
	}
	include := func(v int) {
		for v != -1 && !t.InTree[v] {
			t.InTree[v] = true
			t.Parent[v] = sp.Parent[v]
			t.ParentEdge[v] = sp.ParentEdge[v]
			v = sp.Parent[v]
		}
	}
	if members == nil {
		for v := 0; v < g.n; v++ {
			if sp.Dist[v] < Inf {
				include(v)
			}
		}
	} else {
		include(root)
		for _, m := range members {
			if sp.Dist[m] < Inf {
				include(m)
			}
		}
	}
	return t
}

// EdgeCount returns the number of edges in the tree.
func (t *Tree) EdgeCount() int {
	c := 0
	for v := range t.Parent {
		if t.InTree[v] && t.Parent[v] != -1 {
			c++
		}
	}
	return c
}

// EdgeIndexes returns the graph edge indexes composing the tree.
func (t *Tree) EdgeIndexes() []int {
	var out []int
	for v := range t.ParentEdge {
		if t.InTree[v] && t.ParentEdge[v] != -1 {
			out = append(out, t.ParentEdge[v])
		}
	}
	return out
}

// DistInTree returns the delay of the unique tree path between a and b, or
// Inf if either is off-tree. Used by the Figure 2(a) delay measurement: the
// delay a receiver sees from a sender through a shared tree.
func (t *Tree) DistInTree(a, b int) int64 {
	if !t.InTree[a] || !t.InTree[b] {
		return Inf
	}
	// Walk both nodes to the root recording distances, then splice at the
	// lowest common ancestor.
	distUp := map[int]int64{}
	var d int64
	for v := a; v != -1; v = t.Parent[v] {
		distUp[v] = d
		if t.Parent[v] != -1 {
			d += t.g.edges[t.ParentEdge[v]].Delay
		}
	}
	d = 0
	for v := b; v != -1; v = t.Parent[v] {
		if up, ok := distUp[v]; ok {
			return up + d
		}
		if t.Parent[v] != -1 {
			d += t.g.edges[t.ParentEdge[v]].Delay
		}
	}
	return Inf
}

// PathToRoot returns the node sequence from v up to the tree root.
func (t *Tree) PathToRoot(v int) []int {
	if !t.InTree[v] {
		return nil
	}
	var out []int
	for ; v != -1; v = t.Parent[v] {
		out = append(out, v)
	}
	return out
}
