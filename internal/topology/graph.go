// Package topology provides the graph substrate for the reproduction: an
// undirected weighted multigraph type, the random connected-graph generator
// used by the paper's Figure 2 experiments ("500 different 50-node graphs"
// per node degree), Dijkstra shortest paths, and tree utilities shared by the
// tree-quality analyses in internal/trees and the simulator wiring in
// internal/scenario.
package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Graph is an undirected weighted graph over nodes 0..N-1. Edges are stored
// once and referenced from both endpoints' adjacency lists.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int // node -> indexes into edges
}

// Edge is an undirected link between A and B with a positive Delay weight.
type Edge struct {
	A, B  int
	Delay int64
}

// Other returns the endpoint of e that is not node v.
func (e Edge) Other(v int) int {
	if v == e.A {
		return e.B
	}
	return e.A
}

// New creates an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns edge i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddEdge appends an undirected edge and returns its index.
func (g *Graph) AddEdge(a, b int, delay int64) int {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("topology: edge (%d,%d) out of range for %d nodes", a, b, g.n))
	}
	if a == b {
		panic("topology: self-loop")
	}
	if delay <= 0 {
		panic("topology: non-positive delay")
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{A: a, B: b, Delay: delay})
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
	return idx
}

// HasEdge reports whether at least one edge joins a and b.
func (g *Graph) HasEdge(a, b int) bool {
	for _, ei := range g.adj[a] {
		if g.edges[ei].Other(a) == b {
			return true
		}
	}
	return false
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// AvgDegree returns the mean node degree 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// Incident returns the indexes of edges incident to v. Callers must not
// modify the returned slice.
func (g *Graph) Incident(v int) []int { return g.adj[v] }

// Neighbors returns the distinct neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	seen := map[int]bool{}
	var out []int
	for _, ei := range g.adj[v] {
		u := g.edges[ei].Other(v)
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// Connected reports whether the graph is connected (true for N<=1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.adj[v] {
			u := g.edges[ei].Other(v)
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.AddEdge(e.A, e.B, e.Delay)
	}
	return c
}

// GenConfig parameterizes random graph generation.
type GenConfig struct {
	Nodes  int
	Degree float64 // target average node degree (2M/N)
	// MinDelay/MaxDelay bound per-edge delays, drawn uniformly. Both 1 for
	// unit (hop-count) metrics, which is the Figure 2 default.
	MinDelay, MaxDelay int64
}

// Random generates a connected random graph with the requested average node
// degree, the topology model behind the paper's Figure 2 ("randomly
// generated 50-node networks", "each node degree between three and eight").
//
// Construction: a uniform random spanning tree (random-walk style attachment
// over a shuffled node order) guarantees connectivity, then additional
// distinct random edges are added until the edge count reaches
// round(N*Degree/2). Parallel edges and self-loops are never produced.
func Random(cfg GenConfig, rng *rand.Rand) *Graph {
	if cfg.Nodes <= 0 {
		panic("topology: Nodes must be positive")
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 1
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	n := cfg.Nodes
	target := int(float64(n)*cfg.Degree/2 + 0.5)
	if min := n - 1; target < min {
		target = min
	}
	if max := n * (n - 1) / 2; target > max {
		target = max
	}
	g := New(n)
	delay := func() int64 {
		if cfg.MaxDelay == cfg.MinDelay {
			return cfg.MinDelay
		}
		return cfg.MinDelay + rng.Int63n(cfg.MaxDelay-cfg.MinDelay+1)
	}
	// Spanning tree over a shuffled order: node i attaches to a uniformly
	// chosen earlier node.
	order := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(order[i], order[rng.Intn(i)], delay())
	}
	// Extra edges, rejection-sampled to stay simple (no parallels).
	for g.M() < target {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.AddEdge(a, b, delay())
	}
	return g
}

// PickDistinct selects k distinct nodes uniformly at random, used to choose
// the random group memberships of Figure 2.
func PickDistinct(n, k int, rng *rand.Rand) []int {
	if k > n {
		panic("topology: cannot pick more nodes than exist")
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}

// WriteEdgeList renders the graph in the textual edge-list form cmd/topogen
// emits: a comment header, then one "a b delay" line per edge.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# nodes=%d edges=%d\n", g.n, len(g.edges)); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(w, "%d %d %d\n", e.A, e.B, e.Delay); err != nil {
			return err
		}
	}
	return nil
}

// ParseEdgeList reads the edge-list form back: lines of "a b delay" (delay
// optional, default 1), '#' comments and blank lines ignored. The node
// count is 1 + the largest node index seen.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	type edge struct {
		a, b int
		d    int64
	}
	var edges []edge
	maxNode := -1
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("topology: line %d: want 'a b [delay]', got %q", line, text)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: bad node %q", line, fields[0])
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: bad node %q", line, fields[1])
		}
		d := int64(1)
		if len(fields) == 3 {
			d, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("topology: line %d: bad delay %q", line, fields[2])
			}
		}
		if a < 0 || b < 0 || a == b {
			return nil, fmt.Errorf("topology: line %d: invalid edge %d-%d", line, a, b)
		}
		edges = append(edges, edge{a, b, d})
		if a > maxNode {
			maxNode = a
		}
		if b > maxNode {
			maxNode = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := New(maxNode + 1)
	for _, e := range edges {
		g.AddEdge(e.a, e.b, e.d)
	}
	return g, nil
}
