package topology

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap + refDijkstra reimplement the pre-solver Dijkstra verbatim
// (container/heap, interface boxing, same tie-break expression) as the
// reference the scratch-buffer solver must match bit-for-bit: reproducible
// RPF checks across routers depend on every router choosing the same parent
// under equal-distance ties.
type refHeap []spItem

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(spItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func refDijkstra(g *Graph, src int) *ShortestPaths {
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]int64, g.n),
		Parent:     make([]int, g.n),
		ParentEdge: make([]int, g.n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Inf
		sp.Parent[i] = -1
		sp.ParentEdge[i] = -1
	}
	sp.Dist[src] = 0
	done := make([]bool, g.n)
	h := &refHeap{{node: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(spItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			u := e.Other(v)
			nd := sp.Dist[v] + e.Delay
			if nd < sp.Dist[u] || (nd == sp.Dist[u] && sp.Parent[u] >= 0 && v < sp.Parent[u] && !done[u]) {
				sp.Dist[u] = nd
				sp.Parent[u] = v
				sp.ParentEdge[u] = ei
				heap.Push(h, spItem{node: u, dist: nd})
			}
		}
	}
	return sp
}

func samePaths(t *testing.T, want, got *ShortestPaths, label string) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("%s: source %d != %d", label, got.Source, want.Source)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] || got.ParentEdge[v] != want.ParentEdge[v] {
			t.Fatalf("%s: node %d: got (d=%d p=%d pe=%d) want (d=%d p=%d pe=%d)",
				label, v, got.Dist[v], got.Parent[v], got.ParentEdge[v],
				want.Dist[v], want.Parent[v], want.ParentEdge[v])
		}
	}
}

// TestSolverMatchesReference: the solver (fresh and reused) reproduces the
// reference algorithm exactly, including tie handling, on unit-delay graphs
// where equal-distance ties are everywhere.
func TestSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		// Unit delays force heavy tie-breaking; mixed delays cover the rest.
		maxDelay := int64(1)
		if trial%2 == 1 {
			maxDelay = 4
		}
		g := Random(GenConfig{Nodes: 40, Degree: 4, MinDelay: 1, MaxDelay: maxDelay}, rng)
		solver := g.NewSolver()
		var reused *ShortestPaths
		for src := 0; src < g.N(); src += 7 {
			want := refDijkstra(g, src)
			samePaths(t, want, g.Dijkstra(src), "g.Dijkstra")
			samePaths(t, want, solver.Solve(src), "solver.Solve")
			reused = solver.SolveInto(reused, src)
			samePaths(t, want, reused, "solver.SolveInto reused")
		}
	}
}

// TestSolverLowerParentTieBreak: under unit delays, whenever a node has
// several equal-cost parents that were still undecided when it was first
// relaxed, the recorded parent is never higher-numbered than an available
// already-finalized alternative the algorithm promises to prefer. We assert
// the concrete invariant the protocols rely on: re-solving from scratch and
// from a warm solver picks the identical parent every time.
func TestSolverLowerParentTieBreak(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3 with unit delays. Node 3 has equal-cost
	// parents 1 and 2; the deterministic rule must choose 1.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	solver := g.NewSolver()
	for run := 0; run < 3; run++ { // warm reuse must not change the choice
		sp := solver.Solve(0)
		if sp.Parent[3] != 1 {
			t.Fatalf("run %d: parent of 3 = %d, want lower-numbered 1", run, sp.Parent[3])
		}
	}
}

func TestAllPairsWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Random(GenConfig{Nodes: 50, Degree: 4}, rng)
	seq := g.AllPairsWorkers(1)
	for _, w := range []int{2, 8} {
		par := g.AllPairsWorkers(w)
		for v := range seq {
			for u := range seq[v] {
				if seq[v][u] != par[v][u] {
					t.Fatalf("workers=%d: d[%d][%d] = %d, want %d", w, v, u, par[v][u], seq[v][u])
				}
			}
		}
	}
}

// TestDijkstraAllocsDropped pins the constant-factor win: a warm solver
// writing into a reused result performs zero allocations per run, and even
// the allocate-a-result path stays far below the container/heap version's
// ~150 allocs on a 50-node graph.
func TestDijkstraAllocsDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Random(GenConfig{Nodes: 50, Degree: 6}, rng)
	solver := g.NewSolver()
	sp := solver.Solve(0)
	src := 0
	reuse := testing.AllocsPerRun(100, func() {
		src = (src + 1) % g.N()
		sp = solver.SolveInto(sp, src)
	})
	if reuse != 0 {
		t.Errorf("warm SolveInto allocates %.1f per run, want 0", reuse)
	}
	fresh := testing.AllocsPerRun(100, func() {
		src = (src + 1) % g.N()
		_ = g.Dijkstra(src)
	})
	if fresh > 10 {
		t.Errorf("g.Dijkstra allocates %.1f per run, want <= 10 (seed was ~149)", fresh)
	}
}

// BenchmarkDijkstraReuse quantifies solver reuse against per-call
// allocation on the Figure 2 graph size.
func BenchmarkDijkstraReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g := Random(GenConfig{Nodes: 50, Degree: 6}, rng)
	b.Run("fresh-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Dijkstra(i % 50)
		}
	})
	b.Run("solver-reused", func(b *testing.B) {
		solver := g.NewSolver()
		var sp *ShortestPaths
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp = solver.SolveInto(sp, i%50)
		}
	})
}
