package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndQueries(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 1)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 3) {
		t.Error("no edge 0-3 expected")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.AvgDegree() != 1.5 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(){
		func() { New(2).AddEdge(0, 0, 1) },
		func() { New(2).AddEdge(0, 2, 1) },
		func() { New(2).AddEdge(-1, 1, 1) },
		func() { New(2).AddEdge(0, 1, 0) },
		func() { New(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	if g.Connected() {
		t.Error("3 isolated nodes reported connected")
	}
	g.AddEdge(0, 1, 1)
	if g.Connected() {
		t.Error("node 2 is isolated")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("path graph should be connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs are connected")
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	c := g.Clone()
	c.AddEdge(1, 2, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestRandomGraphProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, deg := range []float64{3, 4, 5, 6, 7, 8} {
		for trial := 0; trial < 20; trial++ {
			g := Random(GenConfig{Nodes: 50, Degree: deg}, rng)
			if !g.Connected() {
				t.Fatalf("degree %v trial %d: disconnected", deg, trial)
			}
			want := int(50*deg/2 + 0.5)
			if g.M() != want {
				t.Fatalf("degree %v: M=%d want %d", deg, g.M(), want)
			}
			// Simple graph: no parallel edges or self loops.
			seen := map[[2]int]bool{}
			for _, e := range g.Edges() {
				if e.A == e.B {
					t.Fatal("self loop generated")
				}
				k := [2]int{e.A, e.B}
				if e.A > e.B {
					k = [2]int{e.B, e.A}
				}
				if seen[k] {
					t.Fatalf("parallel edge %v", k)
				}
				seen[k] = true
				if e.Delay != 1 {
					t.Fatalf("default delay should be 1, got %d", e.Delay)
				}
			}
		}
	}
}

func TestRandomGraphDelayRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Random(GenConfig{Nodes: 30, Degree: 4, MinDelay: 5, MaxDelay: 9}, rng)
	for _, e := range g.Edges() {
		if e.Delay < 5 || e.Delay > 9 {
			t.Fatalf("delay %d out of [5,9]", e.Delay)
		}
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := Random(GenConfig{Nodes: 40, Degree: 5}, rand.New(rand.NewSource(99)))
	b := Random(GenConfig{Nodes: 40, Degree: 5}, rand.New(rand.NewSource(99)))
	if a.M() != b.M() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edge(i), b.Edge(i))
		}
	}
}

func TestRandomDegreeClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Degree too low: still a spanning tree.
	g := Random(GenConfig{Nodes: 10, Degree: 0.1}, rng)
	if g.M() != 9 || !g.Connected() {
		t.Errorf("low degree: M=%d connected=%v", g.M(), g.Connected())
	}
	// Degree too high: clamped to complete graph.
	g = Random(GenConfig{Nodes: 6, Degree: 50}, rng)
	if g.M() != 15 {
		t.Errorf("high degree: M=%d want 15", g.M())
	}
}

func TestPickDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	picked := PickDistinct(50, 10, rng)
	if len(picked) != 10 {
		t.Fatalf("len=%d", len(picked))
	}
	for i := 1; i < len(picked); i++ {
		if picked[i] <= picked[i-1] {
			t.Fatal("not strictly increasing / not distinct")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("picking 11 of 10 should panic")
		}
	}()
	PickDistinct(10, 11, rng)
}

func TestDijkstraLine(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	sp := g.Dijkstra(0)
	want := []int64{0, 2, 5, 9}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Errorf("Dist[%d] = %d, want %d", v, sp.Dist[v], d)
		}
	}
	if p := sp.PathTo(3); len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("PathTo(3) = %v", p)
	}
}

func TestDijkstraPicksShorterOfTwoRoutes(t *testing.T) {
	//     1
	//   /   \
	//  0     3      0-1-3 cost 10, 0-2-3 cost 4
	//   \   /
	//     2
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 3, 5)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	sp := g.Dijkstra(0)
	if sp.Dist[3] != 4 {
		t.Errorf("Dist[3] = %d, want 4", sp.Dist[3])
	}
	if sp.Parent[3] != 2 {
		t.Errorf("Parent[3] = %d, want 2", sp.Parent[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	sp := g.Dijkstra(0)
	if sp.Dist[2] != Inf {
		t.Errorf("Dist[2] = %d, want Inf", sp.Dist[2])
	}
	if sp.PathTo(2) != nil {
		t.Error("PathTo unreachable should be nil")
	}
}

// Dijkstra distances satisfy the triangle inequality over edges and are
// symmetric on undirected graphs.
func TestDijkstraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(GenConfig{Nodes: 20, Degree: 3, MinDelay: 1, MaxDelay: 10}, rng)
		d := g.AllPairs()
		for v := 0; v < g.N(); v++ {
			for u := 0; u < g.N(); u++ {
				if d[v][u] != d[u][v] {
					return false
				}
			}
		}
		for _, e := range g.Edges() {
			for v := 0; v < g.N(); v++ {
				if d[v][e.B] > d[v][e.A]+e.Delay || d[v][e.A] > d[v][e.B]+e.Delay {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSPTreeSpansMembersViaShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Random(GenConfig{Nodes: 50, Degree: 4, MinDelay: 1, MaxDelay: 5}, rng)
	members := PickDistinct(50, 10, rng)
	root := 0
	tr := g.SPTree(root, members)
	sp := g.Dijkstra(root)
	for _, m := range members {
		if !tr.InTree[m] {
			t.Fatalf("member %d not in tree", m)
		}
		// The tree path root->m must have shortest-path length.
		if got := tr.DistInTree(root, m); got != sp.Dist[m] {
			t.Fatalf("tree dist to %d = %d, want %d", m, got, sp.Dist[m])
		}
	}
	// Tree edge count == in-tree nodes - 1 (it is a tree).
	inTree := 0
	for _, ok := range tr.InTree {
		if ok {
			inTree++
		}
	}
	if tr.EdgeCount() != inTree-1 {
		t.Fatalf("edges=%d nodes=%d: not a tree", tr.EdgeCount(), inTree)
	}
	if len(tr.EdgeIndexes()) != tr.EdgeCount() {
		t.Fatal("EdgeIndexes length mismatch")
	}
}

func TestSPTreeNilMembersSpansAll(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	tr := g.SPTree(0, nil)
	for v := 0; v < 4; v++ {
		if !tr.InTree[v] {
			t.Fatalf("node %d missing", v)
		}
	}
}

func TestDistInTree(t *testing.T) {
	// Star: center 0, leaves 1..3, distinct delays.
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(0, 3, 5)
	tr := g.SPTree(0, []int{1, 2, 3})
	if d := tr.DistInTree(1, 2); d != 5 {
		t.Errorf("dist(1,2)=%d want 5", d)
	}
	if d := tr.DistInTree(1, 3); d != 7 {
		t.Errorf("dist(1,3)=%d want 7", d)
	}
	if d := tr.DistInTree(2, 2); d != 0 {
		t.Errorf("dist(2,2)=%d want 0", d)
	}
	if d := tr.DistInTree(0, 3); d != 5 {
		t.Errorf("dist(0,3)=%d want 5", d)
	}
}

func TestDistInTreeOffTree(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	tr := g.SPTree(0, []int{1})
	if tr.InTree[2] {
		t.Fatal("node 2 should be off-tree")
	}
	if tr.DistInTree(0, 2) != Inf {
		t.Error("off-tree distance should be Inf")
	}
}

func TestPathToRoot(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	tr := g.SPTree(0, nil)
	p := tr.PathToRoot(3)
	want := []int{3, 2, 1, 0}
	if len(p) != 4 {
		t.Fatalf("path %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
	g2 := New(2)
	g2.AddEdge(0, 1, 1)
	tr2 := g2.SPTree(0, []int{0})
	if tr2.PathToRoot(1) != nil {
		t.Error("off-tree PathToRoot should be nil")
	}
}

func BenchmarkDijkstra50(b *testing.B) {
	g := Random(GenConfig{Nodes: 50, Degree: 6}, rand.New(rand.NewSource(5)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % 50)
	}
}

func BenchmarkRandomGraph50(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Random(GenConfig{Nodes: 50, Degree: 6}, rng)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Random(GenConfig{Nodes: 20, Degree: 4, MinDelay: 1, MaxDelay: 9}, rand.New(rand.NewSource(4)))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("N=%d M=%d, want %d %d", got.N(), got.M(), g.N(), g.M())
	}
	for i := range g.Edges() {
		if got.Edge(i) != g.Edge(i) {
			t.Fatalf("edge %d: %v vs %v", i, got.Edge(i), g.Edge(i))
		}
	}
}

func TestParseEdgeListDefaults(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("# comment\n\n0 1\n1 2 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Edge(0).Delay != 1 || g.Edge(1).Delay != 5 {
		t.Errorf("delays: %d %d", g.Edge(0).Delay, g.Edge(1).Delay)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, s := range []string{"0\n", "0 1 2 3\n", "x 1\n", "0 y\n", "0 1 z\n", "0 1 0\n", "0 0\n", "-1 2\n"} {
		if _, err := ParseEdgeList(strings.NewReader(s)); err == nil {
			t.Errorf("ParseEdgeList(%q) succeeded", s)
		}
	}
}
