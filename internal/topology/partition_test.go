package topology

import (
	"math/rand"
	"reflect"
	"testing"
)

func clusteredCfg() ClusteredConfig {
	return ClusteredConfig{
		Clusters:     4,
		ClusterNodes: 25,
		Degree:       4,
		MinDelay:     1,
		MaxDelay:     5,
		WANMinDelay:  50,
		WANMaxDelay:  80,
		ExtraWAN:     2,
	}
}

func TestClusteredShape(t *testing.T) {
	cfg := clusteredCfg()
	g := Clustered(cfg, rand.New(rand.NewSource(7)))
	if g.N() != cfg.Clusters*cfg.ClusterNodes {
		t.Fatalf("N = %d, want %d", g.N(), cfg.Clusters*cfg.ClusterNodes)
	}
	if !g.Connected() {
		t.Fatal("clustered graph not connected")
	}
	wan := 0
	for _, e := range g.Edges() {
		interCluster := e.A/cfg.ClusterNodes != e.B/cfg.ClusterNodes
		if interCluster {
			wan++
			if e.Delay < cfg.WANMinDelay {
				t.Fatalf("inter-cluster edge %d-%d has LAN delay %d", e.A, e.B, e.Delay)
			}
		} else if e.Delay > cfg.MaxDelay {
			t.Fatalf("intra-cluster edge %d-%d has WAN delay %d", e.A, e.B, e.Delay)
		}
	}
	if want := cfg.Clusters - 1 + cfg.ExtraWAN; wan != want {
		t.Fatalf("WAN links = %d, want %d", wan, want)
	}
}

// The satellite gate: on a clustered topology the partitioner's cut must
// cross only high-delay WAN links, so the sharded runner's lookahead window
// equals a WAN delay rather than a LAN delay.
func TestPartitionCutsOnlyWANLinks(t *testing.T) {
	cfg := clusteredCfg()
	for seed := int64(1); seed <= 5; seed++ {
		g := Clustered(cfg, rand.New(rand.NewSource(seed)))
		asn := Partition(g, cfg.Clusters)
		for _, ei := range CutEdges(g, asn) {
			e := g.Edge(ei)
			if e.Delay < cfg.WANMinDelay {
				t.Fatalf("seed %d: cut edge %d-%d delay %d is a LAN link (WAN min %d)",
					seed, e.A, e.B, e.Delay, cfg.WANMinDelay)
			}
		}
		if d := MinCutDelay(g, asn); d < cfg.WANMinDelay {
			t.Fatalf("seed %d: min cut delay %d below WAN floor", seed, d)
		}
		// Each cluster should land wholly in one part.
		for c := 0; c < cfg.Clusters; c++ {
			base := c * cfg.ClusterNodes
			for v := base + 1; v < base+cfg.ClusterNodes; v++ {
				if asn[v] != asn[base] {
					t.Fatalf("seed %d: cluster %d split across parts (%d vs %d)",
						seed, c, asn[base], asn[v])
				}
			}
		}
	}
}

func TestPartitionBalanceAndDeterminism(t *testing.T) {
	g := Random(GenConfig{Nodes: 137, Degree: 3.5, MinDelay: 1, MaxDelay: 40},
		rand.New(rand.NewSource(11)))
	for _, k := range []int{1, 2, 4, 7} {
		asn := Partition(g, k)
		if len(asn) != g.N() {
			t.Fatalf("k=%d: assignment length %d", k, len(asn))
		}
		size := make([]int, k)
		for v, c := range asn {
			if c < 0 || c >= k {
				t.Fatalf("k=%d: vertex %d assigned to %d", k, v, c)
			}
			size[c]++
		}
		cap_ := (g.N() + k - 1) / k
		for c, s := range size {
			if s == 0 {
				t.Fatalf("k=%d: part %d empty", k, c)
			}
			if s > cap_ {
				t.Fatalf("k=%d: part %d holds %d > cap %d", k, c, s, cap_)
			}
		}
		if again := Partition(g, k); !reflect.DeepEqual(asn, again) {
			t.Fatalf("k=%d: partition not deterministic", k)
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	// Node 2 disconnected; k larger than useful.
	asn := Partition(g, 3)
	seen := map[int]bool{}
	for _, c := range asn {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("want 3 distinct parts, got %v", asn)
	}
	if got := Partition(New(0), 4); len(got) != 0 {
		t.Fatalf("empty graph: %v", got)
	}
}
