package topology

import (
	"container/heap"
	"math/rand"
)

// Partitioning for the sharded simulation core (internal/netsim): the graph
// is split into k balanced parts so that the links crossing part boundaries
// are, as far as a greedy pass can arrange, the high-delay WAN links. Two
// properties matter to the runner:
//
//   - The conservative lookahead window equals the minimum delay over cut
//     edges, so keeping low-delay edges internal directly buys parallelism.
//   - The assignment must be a pure deterministic function of the graph and
//     k: the shard-determinism gates rerun the same simulation at several
//     shard counts and require bit-identical results, which starts with
//     identical partitions on every run.
//
// The algorithm is a METIS-flavoured greedy growth: k seed vertices are
// spread across the graph by repeated farthest-hop selection, then clusters
// grow one vertex at a time, always absorbing the unassigned vertex with
// the strongest affinity — the largest sum of 1/delay over edges into the
// cluster — under a balance cap of ceil(n/k). High-delay edges contribute
// little affinity, so growth stops at WAN boundaries when the topology has
// them. All ties break on (affinity, vertex, cluster) with integer
// arithmetic, so the result is platform-independent.

// affinityScale converts a delay into an integer affinity contribution;
// 1<<20 over the delay keeps distinct small delays distinguishable without
// floating point.
const affinityScale = int64(1) << 20

// Partition assigns each vertex of g to one of k parts and returns the
// assignment indexed by vertex. k is clamped to [1, N]; every part receives
// at least one vertex and at most ceil(N/k).
func Partition(g *Graph, k int) []int {
	n := g.N()
	asn := make([]int, n)
	if k <= 1 || n == 0 {
		return asn
	}
	if k > n {
		k = n
	}
	for i := range asn {
		asn[i] = -1
	}
	cap_ := (n + k - 1) / k
	size := make([]int, k)

	// Seeds: vertex 0, then repeatedly the vertex with the largest hop
	// distance to any chosen seed (ties to the lowest index). BFS distance
	// deliberately ignores delays — seeds should land in distinct clusters,
	// and hop distance separates dense clusters joined by sparse WAN trees.
	seeds := spreadSeeds(g, k)
	pq := &affinityQueue{}
	aff := make([][]int64, n)
	for v := 0; v < n; v++ {
		aff[v] = make([]int64, k)
	}
	absorb := func(v, c int) {
		asn[v] = c
		size[c]++
		for _, ei := range g.Incident(v) {
			e := g.Edge(ei)
			u := e.Other(v)
			if asn[u] >= 0 {
				continue
			}
			aff[u][c] += affinityScale / e.Delay
			heap.Push(pq, affinityItem{affinity: aff[u][c], vertex: u, cluster: c})
		}
	}
	for c, v := range seeds {
		absorb(v, c)
	}
	assigned := k
	for assigned < n {
		var it affinityItem
		ok := false
		for pq.Len() > 0 {
			it = heap.Pop(pq).(affinityItem)
			if asn[it.vertex] >= 0 || size[it.cluster] >= cap_ {
				continue
			}
			if it.affinity != aff[it.vertex][it.cluster] {
				// Stale entry: the vertex gained affinity since this was
				// pushed; a fresher entry is in the queue.
				continue
			}
			ok = true
			break
		}
		if !ok {
			// No assignable frontier vertex (disconnected component, or all
			// adjacent clusters full): place the lowest unassigned vertex in
			// the smallest cluster (ties to the lowest cluster index).
			v := -1
			for u := 0; u < n; u++ {
				if asn[u] < 0 {
					v = u
					break
				}
			}
			c := 0
			for j := 1; j < k; j++ {
				if size[j] < size[c] {
					c = j
				}
			}
			absorb(v, c)
			assigned++
			continue
		}
		absorb(it.vertex, it.cluster)
		assigned++
	}
	return asn
}

// CutEdges returns the indices of edges whose endpoints lie in different
// parts of the assignment.
func CutEdges(g *Graph, asn []int) []int {
	var cut []int
	for i, e := range g.Edges() {
		if asn[e.A] != asn[e.B] {
			cut = append(cut, i)
		}
	}
	return cut
}

// MinCutDelay returns the smallest delay over cut edges — the conservative
// lookahead window the sharded runner derives from the assignment — or 0
// when nothing is cut.
func MinCutDelay(g *Graph, asn []int) int64 {
	var min int64
	for _, i := range CutEdges(g, asn) {
		d := g.Edge(i).Delay
		if min == 0 || d < min {
			min = d
		}
	}
	return min
}

// spreadSeeds picks k mutually distant vertices by iterated farthest-hop
// BFS from the already chosen set.
func spreadSeeds(g *Graph, k int) []int {
	n := g.N()
	seeds := []int{0}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for len(seeds) < k {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		for _, s := range seeds {
			dist[s] = 0
			queue = append(queue, s)
		}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		best, bestD := -1, -1
		for v := 0; v < n; v++ {
			if dist[v] > bestD {
				best, bestD = v, dist[v]
			}
		}
		if bestD <= 0 {
			// Graph smaller than k or disconnected remainder: fall back to
			// the lowest unchosen vertex.
			for v := 0; v < n; v++ {
				chosen := false
				for _, s := range seeds {
					if s == v {
						chosen = true
						break
					}
				}
				if !chosen {
					best = v
					break
				}
			}
		}
		seeds = append(seeds, best)
	}
	return seeds
}

// affinityItem is one (vertex, cluster) candidate in the growth frontier.
type affinityItem struct {
	affinity int64
	vertex   int
	cluster  int
}

type affinityQueue []affinityItem

func (q affinityQueue) Len() int { return len(q) }
func (q affinityQueue) Less(i, j int) bool {
	if q[i].affinity != q[j].affinity {
		return q[i].affinity > q[j].affinity
	}
	if q[i].vertex != q[j].vertex {
		return q[i].vertex < q[j].vertex
	}
	return q[i].cluster < q[j].cluster
}
func (q affinityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *affinityQueue) Push(x interface{}) { *q = append(*q, x.(affinityItem)) }
func (q *affinityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ClusteredConfig parameterizes the lookahead-friendly generator: dense
// low-delay clusters joined by sparse high-delay WAN links — the topology
// shape the paper's hierarchical-domain discussion assumes and the one
// sharded sweeps want (cut the WAN links, keep the clusters intact).
type ClusteredConfig struct {
	Clusters     int     // number of dense clusters
	ClusterNodes int     // nodes per cluster
	Degree       float64 // target average degree inside a cluster
	// Intra-cluster delays, drawn uniformly (LAN/MAN scale).
	MinDelay, MaxDelay int64
	// WAN link delays, drawn uniformly; WANMinDelay must exceed MaxDelay
	// for the partition cut to prefer WAN boundaries.
	WANMinDelay, WANMaxDelay int64
	// ExtraWAN adds this many WAN links beyond the inter-cluster spanning
	// tree (rejection-sampled to distinct cluster pairs when possible).
	ExtraWAN int
}

// Clustered generates Clusters dense random subgraphs joined by a spanning
// tree of WAN links (plus ExtraWAN extras). Node IDs are contiguous per
// cluster: cluster c owns [c*ClusterNodes, (c+1)*ClusterNodes).
func Clustered(cfg ClusteredConfig, rng *rand.Rand) *Graph {
	if cfg.Clusters <= 0 || cfg.ClusterNodes <= 0 {
		panic("topology: Clustered needs positive Clusters and ClusterNodes")
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 1
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	if cfg.WANMinDelay <= cfg.MaxDelay {
		cfg.WANMinDelay = cfg.MaxDelay * 10
	}
	if cfg.WANMaxDelay < cfg.WANMinDelay {
		cfg.WANMaxDelay = cfg.WANMinDelay
	}
	k, m := cfg.Clusters, cfg.ClusterNodes
	g := New(k * m)
	intraDelay := func() int64 {
		if cfg.MaxDelay == cfg.MinDelay {
			return cfg.MinDelay
		}
		return cfg.MinDelay + rng.Int63n(cfg.MaxDelay-cfg.MinDelay+1)
	}
	wanDelay := func() int64 {
		if cfg.WANMaxDelay == cfg.WANMinDelay {
			return cfg.WANMinDelay
		}
		return cfg.WANMinDelay + rng.Int63n(cfg.WANMaxDelay-cfg.WANMinDelay+1)
	}
	// Dense clusters: same construction as Random, confined to the block.
	for c := 0; c < k; c++ {
		base := c * m
		target := int(float64(m)*cfg.Degree/2 + 0.5)
		if min := m - 1; target < min {
			target = min
		}
		if max := m * (m - 1) / 2; target > max {
			target = max
		}
		order := rng.Perm(m)
		for i := 1; i < m; i++ {
			g.AddEdge(base+order[i], base+order[rng.Intn(i)], intraDelay())
		}
		added := m - 1
		for added < target {
			a, b := base+rng.Intn(m), base+rng.Intn(m)
			if a == b || g.HasEdge(a, b) {
				continue
			}
			g.AddEdge(a, b, intraDelay())
			added++
		}
	}
	// WAN spanning tree over shuffled cluster order, then extras.
	wan := func(c1, c2 int) {
		g.AddEdge(c1*m+rng.Intn(m), c2*m+rng.Intn(m), wanDelay())
	}
	corder := rng.Perm(k)
	for i := 1; i < k; i++ {
		wan(corder[i], corder[rng.Intn(i)])
	}
	for extra := 0; extra < cfg.ExtraWAN && k > 1; extra++ {
		c1, c2 := rng.Intn(k), rng.Intn(k)
		if c1 == c2 {
			extra--
			continue
		}
		wan(c1, c2)
	}
	return g
}
