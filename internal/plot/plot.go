// Package plot renders small ASCII line charts for the experiment tools, so
// `treestudy -plot` shows the Figure 2 curves directly in the terminal
// without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Marker byte // plotted character, e.g. '*' or 'o'
	Values []float64
}

// Chart renders the series over shared x labels. Height is the number of
// plot rows (excluding axes); every series must have len(xs) values.
func Chart(title string, xs []string, series []Series, height int) string {
	if height < 2 {
		height = 2
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if math.IsInf(min, 1) {
		return title + "\n(no data)\n"
	}
	if max == min {
		max = min + 1
	}
	// Column layout: each x position gets a fixed-width cell.
	cell := 6
	for _, x := range xs {
		if len(x)+2 > cell {
			cell = len(x) + 2
		}
	}
	width := cell * len(xs)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - min) / (max - min)
		r := int(math.Round(frac * float64(height-1)))
		return height - 1 - r // row 0 is the top
	}
	for _, s := range series {
		for i, v := range s.Values {
			if i >= len(xs) {
				break
			}
			col := i*cell + cell/2
			r := row(v)
			if grid[r][col] == ' ' || grid[r][col] == s.Marker {
				grid[r][col] = s.Marker
			} else {
				grid[r][col] = '+' // overlapping series
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelW := 10
	for i, line := range grid {
		label := ""
		switch i {
		case 0:
			label = trimNum(max)
		case height - 1:
			label = trimNum(min)
		case (height - 1) / 2:
			label = trimNum(min + (max-min)/2)
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW, label, string(line))
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	var xr strings.Builder
	for _, x := range xs {
		pad := cell - len(x)
		left := pad/2 + pad%2
		xr.WriteString(strings.Repeat(" ", left))
		xr.WriteString(x)
		xr.WriteString(strings.Repeat(" ", pad-left))
	}
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "", xr.String())
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "", strings.Join(legend, "  "))
	return b.String()
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
