package plot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart("ratio vs degree",
		[]string{"3", "4", "5"},
		[]Series{
			{Name: "cbt", Marker: '*', Values: []float64{1.1, 1.2, 1.3}},
			{Name: "spt", Marker: 'o', Values: []float64{1.0, 1.0, 1.0}},
		}, 8)
	for _, want := range []string{"ratio vs degree", "*", "o", "*=cbt", "o=spt", "1.30", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value's marker sits above the min value's marker.
	lines := strings.Split(out, "\n")
	rowOf := func(marker byte, col int) int {
		for i, l := range lines {
			if col < len(l) && l[col] == marker {
				return i
			}
		}
		return -1
	}
	_ = rowOf
	if !strings.Contains(out, "+--") {
		t.Error("no x axis")
	}
}

func TestChartSingleValueRange(t *testing.T) {
	out := Chart("flat", []string{"a"}, []Series{{Name: "s", Marker: '*', Values: []float64{5}}}, 4)
	if !strings.Contains(out, "*") {
		t.Errorf("flat chart lost its point:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", nil, nil, 4)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
}

func TestOverlapMarker(t *testing.T) {
	out := Chart("overlap", []string{"x"}, []Series{
		{Name: "a", Marker: '*', Values: []float64{1}},
		{Name: "b", Marker: 'o', Values: []float64{1}},
	}, 4)
	if !strings.Contains(out, "+") {
		t.Errorf("no overlap marker:\n%s", out)
	}
}

func TestMonotoneSeriesOrdering(t *testing.T) {
	// Rising values must appear on non-increasing rows left to right.
	out := Chart("rise", []string{"1", "2", "3", "4"},
		[]Series{{Name: "s", Marker: '*', Values: []float64{1, 2, 3, 4}}}, 9)
	lines := strings.Split(out, "\n")
	// Only scan plot rows (before the x axis), not the legend.
	plotEnd := len(lines)
	for i, l := range lines {
		if strings.Contains(l, "+--") {
			plotEnd = i
			break
		}
	}
	var rows []int
	for col := 0; col < 60; col++ {
		for i := 0; i < plotEnd; i++ {
			l := lines[i]
			if col < len(l) && l[col] == '*' {
				rows = append(rows, i)
			}
		}
	}
	if len(rows) != 4 {
		t.Fatalf("found %d markers:\n%s", len(rows), out)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] >= rows[i-1] {
			t.Fatalf("rising series not rising: rows=%v\n%s", rows, out)
		}
	}
}
