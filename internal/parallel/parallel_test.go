package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, 4, func(i int) { ran = true })
	For(-3, 4, func(i int) { ran = true })
	if ran {
		t.Error("fn ran for empty range")
	}
}

func TestForWorkerIDsBounded(t *testing.T) {
	const n = 500
	workers := 5
	var bad atomic.Int32
	ForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw out-of-range worker ids", bad.Load())
	}
}

func TestForSingleWorkerIsSequential(t *testing.T) {
	// workers=1 must run in index order on the calling goroutine.
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d", got)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := DeriveSeed(1994, 0, 0)
	if a != DeriveSeed(1994, 0, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{a: true}
	// Nearby coordinates must not collide (these feed rand.NewSource, so a
	// collision would silently correlate two trials).
	for d := int64(0); d < 8; d++ {
		for trial := int64(0); trial < 200; trial++ {
			if d == 0 && trial == 0 {
				continue
			}
			s := DeriveSeed(1994, d, trial)
			if seen[s] {
				t.Fatalf("seed collision at degree=%d trial=%d", d, trial)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1994, 1) == DeriveSeed(1995, 1) {
		t.Error("base seed ignored")
	}
}
