// Package parallel is the experiment engine's worker pool: it fans fully
// independent, seeded trials out across CPUs while keeping every result
// bit-identical to a sequential run.
//
// The repo's evaluation numbers (Figure 2(a)/(b), the §1.2 sparse-overhead
// ledger, the scaling and churn sweeps) all come from loops of independent
// trials. Two rules make those loops safe to parallelize without changing a
// single output bit:
//
//  1. Each trial owns a private rand.Rand seeded by DeriveSeed from the
//     experiment seed and the trial's coordinates, never a shared stream, so
//     a trial's randomness does not depend on which trials ran before it.
//  2. Each trial writes only its own result slot (For hands the caller the
//     index), and any reduction over the slots happens sequentially after
//     the pool drains.
//
// Under those rules the worker count and the OS schedule are unobservable:
// Workers=1 and Workers=N produce the same bytes (asserted by the
// determinism regression tests in internal/trees and internal/experiments).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n itself if positive, otherwise
// GOMAXPROCS (the "0 = use every CPU" convention of the experiment configs).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using at most Workers(workers)
// concurrent goroutines. fn must be safe to call concurrently and should
// write its result only to slot i of a caller-owned slice. With workers==1
// (or n<=1) everything runs inline on the calling goroutine.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's pool index (0..Workers(workers)-1)
// passed to fn, so callers can give each worker reusable scratch space (for
// example one topology.SPSolver per worker) without locking.
func ForWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
}

// DeriveSeed mixes an experiment base seed with a trial's coordinates (for
// example degree index and trial number) into an independent per-trial seed.
// The mix is SplitMix64, so nearby coordinates produce uncorrelated seeds;
// the result depends only on (base, stream), never on execution order.
func DeriveSeed(base int64, stream ...int64) int64 {
	x := mix64(uint64(base) + 0x9E3779B97F4A7C15)
	for _, s := range stream {
		x = mix64(x ^ mix64(uint64(s)+0x9E3779B97F4A7C15))
	}
	return int64(x)
}

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
