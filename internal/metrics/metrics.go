// Package metrics accumulates the protocol-side half of the paper's
// overhead ledger (§1.2): per-router state counts and per-protocol control
// message counts. The traffic half (per-link data/control packets) lives in
// netsim.Stats; experiment harnesses combine both into the tables in
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named-counter bag for one router or one protocol instance.
// The simulator is single-threaded, so plain map access suffices.
type Counters struct {
	m map[string]int64
}

// New returns an empty counter bag.
func New() *Counters { return &Counters{m: map[string]int64{}} }

// Add increments a named counter.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.m[name] += delta
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns a counter's value (0 if never touched).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	return c.m[name]
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes every counter. Benchmark harnesses call it at the start of a
// measured window so counters cover the same span as netsim.Stats.Reset().
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	clear(c.m)
}

// Merge adds other's counters into c.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	for k, v := range other.m {
		c.m[k] += v
	}
}

// String renders "name=value" pairs sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.m[name])
	}
	return b.String()
}

// Canonical counter names shared across the protocol implementations so the
// comparison harness can sum like-for-like.
const (
	CtrlJoinPrune = "ctrl.joinprune" // PIM join/prune messages sent
	CtrlRegister  = "ctrl.register"  // PIM registers sent
	CtrlRPReach   = "ctrl.rpreach"   // RP reachability messages sent
	CtrlQuery     = "ctrl.query"     // PIM neighbor queries sent
	CtrlGraft     = "ctrl.graft"     // dense-mode grafts sent
	CtrlAssert    = "ctrl.assert"    // dense-mode asserts sent
	CtrlPrune     = "ctrl.prune"     // dense-mode/DVMRP prunes sent
	CtrlLSA       = "ctrl.lsa"       // MOSPF membership LSAs sent
	CtrlCBTJoin   = "ctrl.cbtjoin"   // CBT join requests sent
	CtrlCBTAck    = "ctrl.cbtack"    // CBT join acks sent
	CtrlCBTEcho   = "ctrl.cbtecho"   // CBT keepalive echoes sent
	DataForwarded = "data.forwarded" // data packets forwarded (per-router)
	DataDelivered = "data.delivered" // data packets delivered to local members
	DataDropped   = "data.rpfdrop"   // data packets failing the iif check
	DataNoState   = "data.nostate"   // data packets dropped for lack of state
	SPFRuns       = "proc.spf"       // Dijkstra runs (MOSPF processing cost)
)
