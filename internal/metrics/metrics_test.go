package metrics

import "testing"

func TestCountersBasics(t *testing.T) {
	c := New()
	c.Inc(CtrlJoinPrune)
	c.Add(CtrlJoinPrune, 2)
	c.Add(DataForwarded, 10)
	if c.Get(CtrlJoinPrune) != 3 {
		t.Errorf("joinprune = %d", c.Get(CtrlJoinPrune))
	}
	if c.Get("never") != 0 {
		t.Error("untouched counter nonzero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != CtrlJoinPrune {
		t.Errorf("Names = %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(DataForwarded, 1)
	b.Add(DataForwarded, 2)
	b.Add(DataDropped, 5)
	a.Merge(b)
	if a.Get(DataForwarded) != 3 || a.Get(DataDropped) != 5 {
		t.Errorf("merge: %v", a)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add("x", 1) // must not panic
	c.Inc("x")
	if c.Get("x") != 0 {
		t.Error("nil Get should be 0")
	}
	if c.Names() != nil {
		t.Error("nil Names should be nil")
	}
	c.Merge(New())
	New().Merge(nil)
	c.Reset()
}

func TestCountersReset(t *testing.T) {
	c := New()
	c.Add("a", 3)
	c.Inc("b")
	c.Reset()
	if c.Get("a") != 0 || c.Get("b") != 0 {
		t.Errorf("Reset left a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if len(c.Names()) != 0 {
		t.Errorf("Reset left names %v", c.Names())
	}
	c.Inc("a")
	if c.Get("a") != 1 {
		t.Error("counter unusable after Reset")
	}
}

func TestCountersString(t *testing.T) {
	c := New()
	c.Add("b", 2)
	c.Add("a", 1)
	if got := c.String(); got != "a=1 b=2" {
		t.Errorf("String = %q", got)
	}
}
