package faultsearch

import (
	"fmt"
	"strings"

	"pim/internal/script"
)

// VerdictKind classifies a schedule's outcome.
type VerdictKind int

const (
	// VerdictPass: every invariant held and every delivery oracle met.
	VerdictPass VerdictKind = iota
	// VerdictInvariant: the §3.8 checker flagged a violation (fail-fast
	// halted the run at the violation instant).
	VerdictInvariant
	// VerdictDelivery: invariants held but an end-to-end oracle failed.
	VerdictDelivery
)

func (k VerdictKind) String() string {
	switch k {
	case VerdictPass:
		return "pass"
	case VerdictInvariant:
		return "invariant"
	case VerdictDelivery:
		return "delivery"
	}
	return fmt.Sprintf("verdict(%d)", int(k))
}

// Verdict is the outcome of evaluating one schedule.
type Verdict struct {
	Kind VerdictKind
	// Signature classifies the failure for dedupe and for minimization
	// equivalence: the violated contract (stale-timer, dirty-restart, rpf,
	// negcache) for invariant verdicts, the failed oracle set for delivery
	// verdicts. Empty for passes.
	Signature string
	// Detail is the first violation (with simulated time and router) or the
	// failed expectations, for humans.
	Detail string
	// FailedOracles lists the template oracles that failed (delivery only).
	FailedOracles []Oracle
}

// Violating reports whether the schedule found anything.
func (v Verdict) Violating() bool { return v.Kind != VerdictPass }

// Label is the dedupe key component naming what broke.
func (v Verdict) Label() string {
	if v.Kind == VerdictPass {
		return "pass"
	}
	return v.Kind.String() + ":" + v.Signature
}

// SameBug reports whether two verdicts witness the same failure — the
// minimizer's equivalence: a shrunk schedule counts as reproducing only if
// it fails the same way.
func (v Verdict) SameBug(w Verdict) bool {
	return v.Kind == w.Kind && v.Signature == w.Signature
}

// classifyViolation maps a checker message to its contract name.
func classifyViolation(msg string) string {
	switch {
	case strings.Contains(msg, "dead epoch"):
		return "stale-timer"
	case strings.Contains(msg, "restarted router holds"):
		return "dirty-restart"
	case strings.Contains(msg, "fails RPF"):
		return "rpf"
	case strings.Contains(msg, "negative-cached"):
		return "negcache"
	}
	return "other"
}

// Evaluate renders and runs one schedule under the invariant checker in
// fail-fast mode and returns its verdict. Checked runs execute on the
// sequential scheduler regardless of GOMAXPROCS or shard configuration, so
// the verdict is a pure function of the schedule.
func Evaluate(s Schedule) (Verdict, error) {
	src, err := s.Render()
	if err != nil {
		return Verdict{}, err
	}
	sc, err := script.Parse(src)
	if err != nil {
		return Verdict{}, fmt.Errorf("faultsearch: rendered script does not parse: %w\n%s", err, src)
	}
	res, err := sc.RunWith(script.RunConfig{Checked: true, FailFast: true})
	if err != nil {
		return Verdict{}, fmt.Errorf("faultsearch: schedule %v failed to run: %w", s, err)
	}
	if vs := res.Violations; len(vs) > 0 {
		// Fail-fast guarantees exactly one recorded violation — the first.
		return Verdict{
			Kind:      VerdictInvariant,
			Signature: classifyViolation(vs[0].Msg),
			Detail:    vs[0].String(),
		}, nil
	}
	if !res.OK() {
		t, err := templateByName(s.Topo)
		if err != nil {
			return Verdict{}, err
		}
		var failed []Oracle
		var names []string
		for _, o := range t.Oracles {
			if res.Delivered[o.Host+"/"+o.Group] < o.Min {
				failed = append(failed, o)
				names = append(names, fmt.Sprintf("%s/%s=%d<%d", o.Host, o.Group,
					res.Delivered[o.Host+"/"+o.Group], o.Min))
			}
		}
		if len(failed) == 0 {
			// An expectation failed that the oracle table cannot explain:
			// a harness bug, not a protocol bug.
			return Verdict{}, fmt.Errorf("faultsearch: schedule %v failed %v without a failing oracle", s, res.Failures)
		}
		return Verdict{
			Kind:          VerdictDelivery,
			Signature:     strings.Join(oracleNames(failed), "+"),
			Detail:        strings.Join(names, ", "),
			FailedOracles: failed,
		}, nil
	}
	return Verdict{Kind: VerdictPass}, nil
}

func oracleNames(os []Oracle) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.Host + "/" + o.Group
	}
	return out
}
