package faultsearch

import (
	"reflect"
	"testing"

	"pim/internal/netsim"
	"pim/internal/script"
)

// TestBaselinesPass is the search's fairness validation: the zero-clause
// schedule must pass for every topology×protocol cell, otherwise "delivery
// oracle failed" verdicts would blame faults for a template defect.
func TestBaselinesPass(t *testing.T) {
	for _, tpl := range Templates {
		for _, p := range Protocols {
			v, err := Evaluate(Schedule{Topo: tpl.Name, Proto: p.Name, Seed: 1})
			if err != nil {
				t.Errorf("%s/%s: %v", tpl.Name, p.Name, err)
				continue
			}
			if v.Violating() {
				t.Errorf("%s/%s baseline violates: %s (%s)", tpl.Name, p.Name, v.Label(), v.Detail)
			}
		}
	}
}

func TestTimerTickGrid(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{8, 8}, {9, 8}, {17, 8}, {18, 18}, {20, 18}, {38, 38}, {40, 38}, {95, 88},
	} {
		if got := timerTick(c.in); got != c.want {
			t.Errorf("timerTick(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// knownBad is a deterministic violating input for the machinery tests: a
// cut of the chain's only path whose heal lands beyond the scripted run, so
// both delivery oracles necessarily fail. The search generator never emits
// such a schedule (every clause clears by FaultDeadline — the fairness
// contract), which is exactly why it stays violating no matter how correct
// the protocols become. The sweep's original find — the flood-and-prune
// restart black hole — is fixed and lives on as flipped recovery pins under
// scenarios/found/.
func knownBad() (Schedule, Verdict) {
	s := Schedule{
		Topo: "chain3", Proto: "pim-dm", Seed: 7,
		Clauses: []Clause{{Kind: KindCut, Edge: 0, Start: 17, Stop: 300}},
	}
	return s, Verdict{Kind: VerdictDelivery, Signature: "recv/G0+probe/G1"}
}

func TestEvaluateFindsKnownBad(t *testing.T) {
	s, want := knownBad()
	v, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SameBug(want) {
		t.Fatalf("verdict %s (%s), want %s", v.Label(), v.Detail, want.Label())
	}
}

// TestMinimizeDropsIrrelevantClauses seeds the known-bad cut with two
// bystander clauses and checks the minimizer strips the schedule back down
// to the single cut clause, shrinks its outage, and leaves the caller's
// schedule untouched.
func TestMinimizeDropsIrrelevantClauses(t *testing.T) {
	bad, want := knownBad()
	noisy := bad
	noisy.Clauses = []Clause{
		{Kind: KindReorder, Edge: 0, Start: 10, Stop: 30, Window: 20 * netsim.Millisecond, Class: ClassAll},
		bad.Clauses[0],
		{Kind: KindLoss, Edge: 1, Start: 70, Stop: 80, Rate: 0.2, Class: ClassData},
	}
	orig := append([]Clause{}, noisy.Clauses...)
	min, mv, evals, err := Minimize(noisy, want, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Clauses) != 1 || min.Clauses[0].Kind != KindCut {
		t.Fatalf("minimized to %v, want the lone cut clause", min)
	}
	if got := min.Clauses[0]; got.Stop-got.Start >= bad.Clauses[0].Stop-bad.Clauses[0].Start {
		t.Errorf("timing bisect did not shrink the outage: %v", got)
	}
	if !reflect.DeepEqual(noisy.Clauses, orig) {
		t.Errorf("Minimize mutated its input: %v", noisy.Clauses)
	}
	if !mv.SameBug(want) {
		t.Errorf("minimized verdict %s, want same bug as %s", mv.Label(), want.Label())
	}
	if evals < 3 {
		t.Errorf("suspiciously few evals: %d", evals)
	}
	// The minimized schedule must reproduce on its own.
	v, err := Evaluate(min)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SameBug(want) {
		t.Fatalf("minimized schedule verdict %s, want %s", v.Label(), want.Label())
	}
}

// TestSearchReproducible pins the acceptance criterion: a fixed-seed search
// explores the same schedules, finds the same violations, and emits the
// same minimized output across runs and across worker counts.
func TestSearchReproducible(t *testing.T) {
	cfg := Config{Seed: 3, Budget: 30, Workers: 1,
		Topos: []string{"chain3"}, Protos: []string{"pim-dm", "pim-sm"}}
	base, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		rep, err := Search(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, base) {
			t.Fatalf("workers=%d report diverged:\n%+v\nvs\n%+v", workers, rep, base)
		}
	}
}

// TestPlanCoversAllCells: the interleaved plan touches every cell before
// exhausting any one cell's sweep, so small budgets still test every engine.
func TestPlanCoversAllCells(t *testing.T) {
	cfg := Config{Seed: 1, Budget: len(Templates) * len(Protocols)}
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != cfg.Budget {
		t.Fatalf("plan length %d, want %d", len(plan), cfg.Budget)
	}
	seen := map[string]bool{}
	for _, s := range plan {
		seen[s.Topo+"/"+s.Proto] = true
	}
	if len(seen) != cfg.Budget {
		t.Fatalf("first %d trials cover %d cells, want all %d", cfg.Budget, len(seen), cfg.Budget)
	}
}

// TestRenderFoundRoundTrips: the emitted counterexample parses, declares
// its recorded verdict, and passes — i.e. the bug reproduces through the
// script runner exactly as the search saw it.
func TestRenderFoundRoundTrips(t *testing.T) {
	s, want := knownBad()
	v, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SameBug(want) {
		t.Fatalf("verdict %s, want %s", v.Label(), want.Label())
	}
	src, err := RenderFound(s, v, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := script.Parse(src)
	if err != nil {
		t.Fatalf("rendered counterexample does not parse: %v\n%s", err, src)
	}
	res, err := sc.RunWith(script.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("recorded verdict did not reproduce: %v\n%s", res.Failures, src)
	}
}

// TestRenderFoundInvariantForm: an invariant verdict renders the violation
// expectation instead of delivery oracles.
func TestRenderFoundInvariantForm(t *testing.T) {
	s, _ := knownBad()
	src, err := RenderFound(s, Verdict{Kind: VerdictInvariant, Signature: "stale-timer",
		Detail: "t=1s r1: timer from dead epoch 0 fired in epoch 1"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := script.Parse(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if !sc.ExpectsViolations() {
		t.Fatalf("invariant-form counterexample lacks the violations expectation:\n%s", src)
	}
}
