package faultsearch

import (
	"math/rand"

	"pim/internal/netsim"
	"pim/internal/parallel"
)

// The sampled value ladders. Coarse grids keep the space enumerable-ish and
// make minimized schedules read naturally.
var (
	lossRates      = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	reorderWindows = []netsim.Time{20 * netsim.Millisecond, 50 * netsim.Millisecond,
		100 * netsim.Millisecond, 250 * netsim.Millisecond, 500 * netsim.Millisecond}
	classes = []Class{ClassAll, ClassControl, ClassData}
)

// timerTick returns the largest script time ≤ t that lands exactly on the
// fast-timer tick grid: engines start at unicast convergence C, script time
// x maps to C+2+x, and the fast deployment's hellos/refreshes fire on
// C+10k — so x ≡ 8 (mod 10).
func timerTick(t int) int {
	x := (t-8)/10*10 + 8
	if x > t {
		x -= 10
	}
	return x
}

// EnumerateSingles yields the deterministic single-clause sweep for one
// topology×protocol cell: every edge under full control loss, full data
// loss, heavy reordering, and a mid-run cut; every transit router crashed
// twice — once with the crash and restart swept onto the timer-tick grid
// (the restart lands on the same instant a refresh/hello fires), once
// deliberately off-grid — plus one flap per edge. This is the "enumerate"
// half of the search; Random is the sampling half.
func EnumerateSingles(topo, proto string, seed int64) []Schedule {
	t, err := templateByName(topo)
	if err != nil {
		return nil
	}
	mk := func(c Clause) Schedule {
		return Schedule{Topo: topo, Proto: proto, Seed: seed, Clauses: []Clause{c}}
	}
	var out []Schedule
	for e := 0; e < t.NumEdges; e++ {
		out = append(out,
			mk(Clause{Kind: KindLoss, Edge: e, Start: 20, Stop: 60, Rate: 1.0, Class: ClassControl}),
			mk(Clause{Kind: KindLoss, Edge: e, Start: 20, Stop: 60, Rate: 0.6, Class: ClassData}),
			mk(Clause{Kind: KindReorder, Edge: e, Start: 10, Stop: 90, Window: 250 * netsim.Millisecond, Class: ClassAll}),
			mk(Clause{Kind: KindCut, Edge: e, Start: 20, Stop: 45}),
			mk(Clause{Kind: KindFlap, Edge: e, Start: 20, Down: 2, Up: 2, Cycles: 3}),
		)
	}
	for _, r := range t.Transit {
		out = append(out,
			// Timer-aligned: crash and restart both on the C+10k grid.
			mk(Clause{Kind: KindCrash, Router: r, Start: timerTick(20), Stop: timerTick(40)}),
			// Off-grid: restart lands between ticks.
			mk(Clause{Kind: KindCrash, Router: r, Start: 17, Stop: 29}),
		)
	}
	return out
}

// Random draws one multi-clause schedule from rng. Clauses are deduped by
// scope (one knob setting per target) and every clause honors the fairness
// contract: active only inside [FaultWindowStart, FaultWindowEnd].
func Random(topo, proto string, seed int64, rng *rand.Rand) Schedule {
	t, err := templateByName(topo)
	if err != nil {
		panic(err)
	}
	s := Schedule{Topo: topo, Proto: proto, Seed: seed}
	n := 1 + rng.Intn(3)
	seen := map[string]bool{}
	for len(s.Clauses) < n {
		c := randomClause(t, rng)
		if seen[c.scope()] {
			continue
		}
		seen[c.scope()] = true
		s.Clauses = append(s.Clauses, c)
	}
	return s
}

func randomClause(t Template, rng *rand.Rand) Clause {
	// Window on the 1s grid inside the fault window.
	span := FaultWindowEnd - FaultWindowStart
	window := func(minLen, maxLen int) (int, int) {
		length := minLen + rng.Intn(maxLen-minLen+1)
		start := FaultWindowStart + rng.Intn(span-length+1)
		return start, start + length
	}
	edge := func() int { return rng.Intn(t.NumEdges) }
	edgeOrAll := func() int {
		if rng.Intn(4) == 0 {
			return -1
		}
		return edge()
	}
	switch rng.Intn(5) {
	case 0:
		start, stop := window(5, 60)
		return Clause{Kind: KindLoss, Edge: edgeOrAll(), Start: start, Stop: stop,
			Rate: lossRates[rng.Intn(len(lossRates))], Class: classes[rng.Intn(len(classes))]}
	case 1:
		start, stop := window(10, 80)
		return Clause{Kind: KindReorder, Edge: edgeOrAll(), Start: start, Stop: stop,
			Window: reorderWindows[rng.Intn(len(reorderWindows))], Class: classes[rng.Intn(len(classes))]}
	case 2:
		r := t.Transit[rng.Intn(len(t.Transit))]
		start, stop := window(5, 20)
		if stop > 95 {
			stop = 95
		}
		// Half the crash schedules sweep onto the protocol timer grid: the
		// search's whole point is restarts colliding with timer fires.
		if rng.Intn(2) == 0 {
			if s2 := timerTick(stop); s2 > start {
				stop = s2
			}
			if s1 := timerTick(start); s1 >= FaultWindowStart && s1 < stop {
				start = s1
			}
		}
		return Clause{Kind: KindCrash, Router: r, Start: start, Stop: stop}
	case 3:
		start, stop := window(2, 25)
		return Clause{Kind: KindCut, Edge: edge(), Start: start, Stop: stop}
	default:
		down := 1 + rng.Intn(5)
		up := 1 + rng.Intn(5)
		cycles := 1 + rng.Intn(3)
		latest := FaultWindowEnd - cycles*(down+up)
		start := FaultWindowStart + rng.Intn(latest-FaultWindowStart+1)
		return Clause{Kind: KindFlap, Edge: edge(), Start: start, Down: down, Up: up, Cycles: cycles}
	}
}

// trialSeed derives the faultseed for one trial: a small positive number so
// the rendered `faultseed` line stays readable.
func trialSeed(searchSeed int64, trial int) int64 {
	return int64(uint64(parallel.DeriveSeed(searchSeed, 0xfa17, int64(trial))) % 1_000_000)
}
