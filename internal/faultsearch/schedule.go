// Package faultsearch is the systematic fault-schedule search harness: it
// enumerates and randomly samples schedules of injected faults — loss
// placement by link/class/time-window, crash/restart timing swept across
// protocol timer boundaries, link cuts and flaps, and bounded per-link
// message reordering — over small topologies for every routing engine in
// the repo, runs each schedule under the deployment glue with the §3.8
// invariant checker in fail-fast mode plus end-to-end delivery oracles,
// minimizes every violating schedule delta-debugging style, and emits the
// survivors as self-contained .pim scenarios whose expectations *record*
// the violation. Dropped into scenarios/found/, each counterexample passes
// iff its bug still reproduces, so the regression corpus grows itself.
package faultsearch

import (
	"fmt"
	"strings"

	"pim/internal/netsim"
)

// Kind enumerates the fault-clause kinds the search composes.
type Kind int

const (
	// KindLoss applies Bernoulli loss to one edge (or all) over a window.
	KindLoss Kind = iota
	// KindReorder applies a bounded reorder window to one edge (or all).
	KindReorder
	// KindCrash fail-stops a router at Start and restarts it at Stop.
	KindCrash
	// KindCut takes an edge down at Start and back up at Stop.
	KindCut
	// KindFlap runs bounded down/up cycles on an edge starting at Start.
	KindFlap
)

func (k Kind) String() string {
	switch k {
	case KindLoss:
		return "loss"
	case KindReorder:
		return "reorder"
	case KindCrash:
		return "crash"
	case KindCut:
		return "cut"
	case KindFlap:
		return "flap"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Class mirrors the script's message-class filter for loss/reorder clauses.
type Class int

const (
	// ClassAll matches every packet.
	ClassAll Class = iota
	// ClassControl matches routing-protocol packets only.
	ClassControl
	// ClassData matches data packets only.
	ClassData
)

func (c Class) suffix() string {
	switch c {
	case ClassControl:
		return " control"
	case ClassData:
		return " data"
	}
	return ""
}

// Clause is one fault in a schedule. Times are script times in whole
// seconds (the search samples on a 1s grid; engines start at unicast
// convergence C and script time t maps to simulated C+2s+t, so t ≡ 8
// (mod 10) lands exactly on the fast-timer tick grid C+10ks).
type Clause struct {
	Kind  Kind
	Edge  int // loss/reorder: -1 = all links; cut/flap: required
	Router int // crash only
	Start int // seconds; crash/cut: fault onset
	Stop  int // seconds; loss/reorder cleared, crashed router restarted, cut edge restored
	Rate  float64     // loss
	Window netsim.Time // reorder
	Class Class       // loss/reorder
	Down, Up, Cycles int // flap: seconds per half-cycle, cycle count
}

// scope is the dedupe key: at most one clause per (kind, target), so a
// schedule never stacks two conflicting settings on the same knob.
func (c Clause) scope() string {
	switch c.Kind {
	case KindCrash:
		return fmt.Sprintf("crash/r%d", c.Router)
	case KindCut, KindFlap:
		// A flap and a cut on the same edge interleave down/up events
		// unpredictably; share a scope so they exclude each other.
		return fmt.Sprintf("updown/%d", c.Edge)
	default:
		return fmt.Sprintf("%s/%d", c.Kind, c.Edge)
	}
}

func (c Clause) String() string {
	edge := "all"
	if c.Edge >= 0 {
		edge = fmt.Sprintf("edge %d", c.Edge)
	}
	switch c.Kind {
	case KindLoss:
		return fmt.Sprintf("loss %s rate %.2g%s [%ds,%ds)", edge, c.Rate, c.Class.suffix(), c.Start, c.Stop)
	case KindReorder:
		return fmt.Sprintf("reorder %s window %v%s [%ds,%ds)", edge, c.Window, c.Class.suffix(), c.Start, c.Stop)
	case KindCrash:
		return fmt.Sprintf("crash r%d at %ds restart %ds", c.Router, c.Start, c.Stop)
	case KindCut:
		return fmt.Sprintf("cut %s [%ds,%ds)", edge, c.Start, c.Stop)
	case KindFlap:
		return fmt.Sprintf("flap %s down=%ds up=%ds cycles=%d from %ds", edge, c.Down, c.Up, c.Cycles, c.Start)
	}
	return "clause(?)"
}

// Schedule is one point in the search space: a topology template, a
// protocol configuration, a fault seed (the injector's loss/reorder stream
// seed), and the fault clauses.
type Schedule struct {
	Topo   string // template name (see Templates)
	Proto  string // protocol config name (see Protocols)
	Seed   int64  // faultseed for the rendered script
	Clauses []Clause
}

func (s Schedule) String() string {
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%s/%s seed=%d {%s}", s.Topo, s.Proto, s.Seed, strings.Join(parts, "; "))
}

// Oracle is one end-to-end delivery expectation of a template: host must
// receive at least Min packets of group. The search renders it as
// `expect <host> received <group> >= <min>`; a found counterexample whose
// verdict is this oracle's failure renders the negation (`< min`) so the
// corpus file passes iff the delivery bug reproduces.
type Oracle struct {
	Host  string
	Group string
	Min   int
}

// Template is a small topology with fixed traffic choreography. The
// timeline implements the fairness contract that makes "delivery oracle
// failed" a meaningful verdict:
//
//   - every fault clause is over by FaultDeadline (loss/reorder cleared,
//     crashed routers restarted, cut links healed, flaps finished);
//   - a grace period follows, long enough for the fast-timer deployment to
//     rebuild (prune holdtimes expire at 60s, refresh at 20s, IGMP requery
//     at 10s);
//   - then a probe phase exercises fresh state: a second group G1 joined
//     and sent to only after the grace period, whose delivery floor no
//     legitimate recovery can miss.
type Template struct {
	Name    string
	Edges   string // `topo edges` operand
	NumEdges int
	Routers int
	RP      string // rendered for protocols with NeedsRP (doubles as CBT core)
	Transit []int  // crash candidates: routers hosting no script host
	Src, Recv, Probe string // router refs for the three hosts
	Oracles []Oracle
}

// The schedule timeline constants (script seconds).
const (
	// FaultWindowStart/FaultWindowEnd bound every clause's activity.
	FaultWindowStart = 5
	FaultWindowEnd   = 95
	// FaultDeadline is when the rendered script force-clears global knobs.
	FaultDeadline = 100
	// ProbeJoin/ProbeSend start the fresh-state probe after the grace
	// period; ProbeCount packets go out every 2s.
	ProbeJoin  = 140
	ProbeSend  = 150
	ProbeCount = 10
	// RunFor is the total scripted run length.
	RunFor = 220
	// steadyCount packets of G0 leave src every 1s from t=3s.
	steadyCount = 200
)

// Templates are the search topologies: a 3-router chain (single path, so
// every fault is on the path) and a 4-router diamond (two equal-cost
// 2-hop paths, so cuts and crashes force reroutes).
var Templates = []Template{
	{
		Name:    "chain3",
		Edges:   "0-1 1-2",
		NumEdges: 2,
		Routers: 3,
		RP:      "r1",
		Transit: []int{1},
		Src:     "r0",
		Recv:    "r2",
		Probe:   "r2",
		Oracles: []Oracle{
			{Host: "recv", Group: "G0", Min: 50},
			{Host: "probe", Group: "G1", Min: 8},
		},
	},
	{
		Name:    "diamond4",
		Edges:   "0-1 0-2 1-3 2-3",
		NumEdges: 4,
		Routers: 4,
		RP:      "r1",
		Transit: []int{1, 2},
		Src:     "r0",
		Recv:    "r3",
		Probe:   "r3",
		Oracles: []Oracle{
			{Host: "recv", Group: "G0", Min: 50},
			{Host: "probe", Group: "G1", Min: 8},
		},
	},
}

// ProtoConfig is one engine configuration under search.
type ProtoConfig struct {
	Name    string
	Line    string // `protocol` operand(s), timers=fast appended at render
	NeedsRP bool
}

// Protocols are the six engine configurations every search sweep covers.
var Protocols = []ProtoConfig{
	{Name: "pim-sm", Line: "pim-sm", NeedsRP: true},
	{Name: "pim-sm-never", Line: "pim-sm spt=never", NeedsRP: true},
	{Name: "pim-dm", Line: "pim-dm"},
	{Name: "dvmrp", Line: "dvmrp"},
	{Name: "cbt", Line: "cbt", NeedsRP: true},
	{Name: "mospf", Line: "mospf"},
}

func templateByName(name string) (Template, error) {
	for _, t := range Templates {
		if t.Name == name {
			return t, nil
		}
	}
	return Template{}, fmt.Errorf("faultsearch: unknown template %q", name)
}

func protoByName(name string) (ProtoConfig, error) {
	for _, p := range Protocols {
		if p.Name == name {
			return p, nil
		}
	}
	return ProtoConfig{}, fmt.Errorf("faultsearch: unknown protocol config %q", name)
}

func edgeRef(e int) string {
	if e < 0 {
		return "all"
	}
	return fmt.Sprintf("%d", e)
}

// renderClause emits the `at` statements realizing one clause, including
// the clearing statement that upholds the fairness contract.
func renderClause(b *strings.Builder, c Clause) {
	switch c.Kind {
	case KindLoss:
		fmt.Fprintf(b, "at %ds loss %s %.2g%s\n", c.Start, edgeRef(c.Edge), c.Rate, c.Class.suffix())
		fmt.Fprintf(b, "at %ds loss %s 0%s\n", c.Stop, edgeRef(c.Edge), c.Class.suffix())
	case KindReorder:
		fmt.Fprintf(b, "at %ds reorder %s %dms%s\n", c.Start, edgeRef(c.Edge), int(c.Window/netsim.Millisecond), c.Class.suffix())
		fmt.Fprintf(b, "at %ds reorder %s 0%s\n", c.Stop, edgeRef(c.Edge), c.Class.suffix())
	case KindCrash:
		fmt.Fprintf(b, "at %ds crash r%d\n", c.Start, c.Router)
		fmt.Fprintf(b, "at %ds restart r%d\n", c.Stop, c.Router)
	case KindCut:
		fmt.Fprintf(b, "at %ds linkdown %d\n", c.Start, c.Edge)
		fmt.Fprintf(b, "at %ds linkup %d\n", c.Stop, c.Edge)
	case KindFlap:
		fmt.Fprintf(b, "at %ds flap %d down=%ds up=%ds cycles=%d\n", c.Start, c.Edge, c.Down, c.Up, c.Cycles)
	}
}

// Render emits the schedule as a runnable .pim script in search form: the
// template's delivery oracles as positive expectations, no violation
// expectation (the search reads the checker directly).
func (s Schedule) Render() (string, error) {
	return s.render(nil, "")
}

func (s Schedule) render(negate []Oracle, header string) (string, error) {
	t, err := templateByName(s.Topo)
	if err != nil {
		return "", err
	}
	p, err := protoByName(s.Proto)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if header != "" {
		b.WriteString(header)
	}
	fmt.Fprintf(&b, "topo edges %s\n", t.Edges)
	b.WriteString("unicast oracle\n")
	rp := ""
	if p.NeedsRP {
		rp = " rp " + t.RP
	}
	fmt.Fprintf(&b, "group G0%s\n", rp)
	fmt.Fprintf(&b, "group G1%s\n", rp)
	fmt.Fprintf(&b, "faultseed %d\n", s.Seed)
	fmt.Fprintf(&b, "protocol %s timers=fast\n", p.Line)
	fmt.Fprintf(&b, "host src %s\n", t.Src)
	fmt.Fprintf(&b, "host recv %s\n", t.Recv)
	fmt.Fprintf(&b, "host probe %s\n", t.Probe)
	fmt.Fprintf(&b, "at 1s join recv G0\n")
	fmt.Fprintf(&b, "at 3s send src G0 count=%d every=1s\n", steadyCount)
	for _, c := range s.Clauses {
		renderClause(&b, c)
	}
	// Belt-and-braces clearing of the global knobs at the fault deadline:
	// even a mis-generated clause cannot leak faults into the probe phase.
	fmt.Fprintf(&b, "at %ds loss all 0\n", FaultDeadline)
	fmt.Fprintf(&b, "at %ds reorder all 0\n", FaultDeadline)
	fmt.Fprintf(&b, "at %ds join probe G1\n", ProbeJoin)
	fmt.Fprintf(&b, "at %ds send src G1 count=%d every=2s\n", ProbeSend, ProbeCount)
	fmt.Fprintf(&b, "run %ds\n", RunFor)
	neg := func(o Oracle) bool {
		for _, n := range negate {
			if n.Host == o.Host && n.Group == o.Group {
				return true
			}
		}
		return false
	}
	if negate == nil {
		for _, o := range t.Oracles {
			fmt.Fprintf(&b, "expect %s received %s >= %d\n", o.Host, o.Group, o.Min)
		}
	} else {
		// Found-counterexample form: only the failed oracles appear, negated,
		// so the file passes exactly when the delivery bug reproduces.
		for _, o := range t.Oracles {
			if neg(o) {
				fmt.Fprintf(&b, "expect %s received %s < %d\n", o.Host, o.Group, o.Min)
			}
		}
	}
	return b.String(), nil
}

// RenderFound emits the schedule as a self-contained counterexample
// scenario whose expectations record the verdict: `expect violations >= 1`
// for invariant verdicts, the negated delivery oracles for delivery
// verdicts. The header comment names the violated contract and the seeds
// so a reader can reproduce the find without the search harness.
func RenderFound(s Schedule, v Verdict, searchSeed int64, trial int) (string, error) {
	var h strings.Builder
	h.WriteString("# Found by `pimbench -faultsearch` and minimized; do not edit by hand.\n")
	fmt.Fprintf(&h, "# violated: %s\n", v.Label())
	fmt.Fprintf(&h, "# detail: %s\n", v.Detail)
	fmt.Fprintf(&h, "# search seed %d, trial %d, faultseed %d\n", searchSeed, trial, s.Seed)
	fmt.Fprintf(&h, "# schedule: %s\n", s.String())
	h.WriteString("# The expectations below RECORD the bug: this scenario passes iff the\n")
	h.WriteString("# violation still reproduces, and fails once the bug is fixed — then the\n")
	h.WriteString("# expectations should be flipped to pin the fix.\n")
	if v.Kind == VerdictInvariant {
		body, err := s.render([]Oracle{}, h.String())
		if err != nil {
			return "", err
		}
		return body + "expect violations >= 1\n", nil
	}
	return s.render(v.FailedOracles, h.String())
}
