package faultsearch

import "fmt"

// Minimize shrinks a violating schedule delta-debugging style while the
// same bug (Verdict.SameBug) keeps reproducing:
//
//  1. greedy clause drop — remove whole clauses one at a time;
//  2. timing bisect — push each surviving clause's Start later and pull
//     its Stop earlier by binary search on the 1s grid;
//  3. intensity shrink — step loss rates and reorder windows down their
//     ladders while the bug survives.
//
// Every probe costs one Evaluate; the search stops after budget probes
// (the current best schedule is still returned). Minimization is fully
// sequential and deterministic: same input schedule and verdict, same
// output, independent of worker count.
//
// The returned Verdict is the minimized schedule's own (same bug as want,
// but with the minimized run's detail), so emitted counterexamples describe
// exactly the schedule they contain.
func Minimize(s Schedule, want Verdict, budget int) (Schedule, Verdict, int, error) {
	// Own the clause slice: shrink steps write clauses in place and must
	// never alias the caller's (the report keeps the original schedule).
	s.Clauses = append([]Clause{}, s.Clauses...)
	evals := 0
	reproduces := func(cand Schedule) (bool, error) {
		if evals >= budget {
			return false, nil
		}
		evals++
		v, err := Evaluate(cand)
		if err != nil {
			return false, err
		}
		return v.SameBug(want), nil
	}

	// Phase 1: greedy clause drop.
	for i := 0; i < len(s.Clauses) && len(s.Clauses) > 1; {
		cand := s
		cand.Clauses = append(append([]Clause{}, s.Clauses[:i]...), s.Clauses[i+1:]...)
		ok, err := reproduces(cand)
		if err != nil {
			return s, want, evals, err
		}
		if ok {
			s = cand
		} else {
			i++
		}
	}

	// bisect finds the extreme value in [lo,hi] (towards hi) for which set()
	// still reproduces, assuming monotonicity — the classic ddmin shortcut.
	bisect := func(lo, hi int, set func(int) Schedule) (int, error) {
		best := lo
		for lo < hi {
			mid := (lo + hi + 1) / 2
			ok, err := reproduces(set(mid))
			if err != nil {
				return best, err
			}
			if ok {
				best, lo = mid, mid
			} else {
				hi = mid - 1
			}
		}
		return best, nil
	}

	// Phase 2: timing bisect per clause.
	for i := range s.Clauses {
		c := s.Clauses[i]
		switch c.Kind {
		case KindLoss, KindReorder, KindCut, KindCrash:
			// Latest Start that still reproduces.
			if c.Stop-1 > c.Start {
				v, err := bisect(c.Start, c.Stop-1, func(x int) Schedule {
					cand := cloneAt(s, i)
					cand.Clauses[i].Start = x
					return cand
				})
				if err != nil {
					return s, want, evals, err
				}
				s.Clauses[i].Start = v
			}
			// Earliest Stop that still reproduces (bisect towards small by
			// negating the axis).
			c = s.Clauses[i]
			if c.Stop-1 > c.Start {
				v, err := bisect(-c.Stop, -(c.Start + 1), func(x int) Schedule {
					cand := cloneAt(s, i)
					cand.Clauses[i].Stop = -x
					return cand
				})
				if err != nil {
					return s, want, evals, err
				}
				s.Clauses[i].Stop = -v
			}
		case KindFlap:
			// Shrink cycle count.
			for s.Clauses[i].Cycles > 1 {
				cand := cloneAt(s, i)
				cand.Clauses[i].Cycles--
				ok, err := reproduces(cand)
				if err != nil {
					return s, want, evals, err
				}
				if !ok {
					break
				}
				s = cand
			}
		}
	}

	// Phase 3: intensity shrink.
	for i := range s.Clauses {
		switch s.Clauses[i].Kind {
		case KindLoss:
			for _, r := range lossRates {
				if r >= s.Clauses[i].Rate {
					break
				}
				cand := cloneAt(s, i)
				cand.Clauses[i].Rate = r
				ok, err := reproduces(cand)
				if err != nil {
					return s, want, evals, err
				}
				if ok {
					s = cand
					break
				}
			}
		case KindReorder:
			for _, w := range reorderWindows {
				if w >= s.Clauses[i].Window {
					break
				}
				cand := cloneAt(s, i)
				cand.Clauses[i].Window = w
				ok, err := reproduces(cand)
				if err != nil {
					return s, want, evals, err
				}
				if ok {
					s = cand
					break
				}
			}
		}
	}

	// The minimized schedule must still reproduce — guard against a buggy
	// shrink step having been accepted on a budget-exhausted false "ok".
	v, err := Evaluate(s)
	if err != nil {
		return s, want, evals, err
	}
	evals++
	if !v.SameBug(want) {
		return s, want, evals, fmt.Errorf("faultsearch: minimized schedule %v no longer reproduces %s", s, want.Label())
	}
	return s, v, evals, nil
}

// cloneAt returns s with the clause slice copied so the caller can mutate
// clause i without aliasing the original schedule.
func cloneAt(s Schedule, i int) Schedule {
	cand := s
	cand.Clauses = append([]Clause{}, s.Clauses...)
	return cand
}
