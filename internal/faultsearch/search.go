package faultsearch

import (
	"fmt"
	"math/rand"

	"pim/internal/parallel"
)

// Config parameterizes one search run.
type Config struct {
	// Seed drives schedule generation and the per-trial fault seeds.
	Seed int64
	// Budget is the number of schedules to evaluate (the deterministic
	// single-clause sweep first, then random sampling).
	Budget int
	// MinimizeBudget caps Evaluate probes per minimization (default 48).
	MinimizeBudget int
	// Workers bounds trial-evaluation concurrency (0 = all CPUs). The
	// report is bit-identical at any worker count: trials are independent,
	// each writes only its own slot, and minimization runs sequentially in
	// trial order afterwards.
	Workers int
	// Topos/Protos restrict the sweep (default: all templates × all six
	// engine configurations).
	Topos, Protos []string
	// Log, when non-nil, receives progress lines.
	Log func(format string, a ...interface{})
}

// Found is one minimized counterexample.
type Found struct {
	Trial    int
	Original Schedule
	Minimal  Schedule
	Verdict  Verdict
	// MinEvals is the number of Evaluate probes minimization spent.
	MinEvals int
}

// Report is the outcome of a search run.
type Report struct {
	// Explored is the number of schedules evaluated by the sweep itself.
	Explored int
	// Violations counts violating schedules before dedupe.
	Violations int
	// Found holds one minimized counterexample per distinct bug signature
	// (topo × proto × verdict label), in trial order.
	Found []Found
	// MinimizeEvals is the total Evaluate probes spent minimizing.
	MinimizeEvals int
}

// MinScheduleSize is the clause count of the smallest minimized schedule,
// or 0 when nothing was found.
func (r Report) MinScheduleSize() int {
	min := 0
	for _, f := range r.Found {
		if n := len(f.Minimal.Clauses); min == 0 || n < min {
			min = n
		}
	}
	return min
}

func (c Config) logf(format string, a ...interface{}) {
	if c.Log != nil {
		c.Log(format, a...)
	}
}

// Plan materializes the deterministic trial list for a config: the
// single-clause enumeration over every topo×proto cell (round-robin across
// cells so a small budget still touches every engine), then random
// schedules, truncated or extended to exactly Budget entries. The plan is
// a pure function of the config — the reproducibility contract starts here.
func (c Config) Plan() ([]Schedule, error) {
	topos := c.Topos
	if len(topos) == 0 {
		for _, t := range Templates {
			topos = append(topos, t.Name)
		}
	}
	protos := c.Protos
	if len(protos) == 0 {
		for _, p := range Protocols {
			protos = append(protos, p.Name)
		}
	}
	type cell struct{ topo, proto string }
	var cells []cell
	for _, t := range topos {
		if _, err := templateByName(t); err != nil {
			return nil, err
		}
		for _, p := range protos {
			if _, err := protoByName(p); err != nil {
				return nil, err
			}
			cells = append(cells, cell{t, p})
		}
	}
	if len(cells) == 0 || c.Budget <= 0 {
		return nil, nil
	}
	// Interleave the per-cell single sweeps round-robin.
	singles := make([][]Schedule, len(cells))
	for i, cl := range cells {
		singles[i] = EnumerateSingles(cl.topo, cl.proto, 0)
	}
	var plan []Schedule
	for row := 0; ; row++ {
		any := false
		for i := range singles {
			if row < len(singles[i]) {
				plan = append(plan, singles[i][row])
				any = true
			}
		}
		if !any {
			break
		}
	}
	// Random tail (or truncation) to exactly Budget, each trial seeded from
	// its own index so the plan does not depend on evaluation order.
	if len(plan) > c.Budget {
		plan = plan[:c.Budget]
	}
	for t := len(plan); t < c.Budget; t++ {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(c.Seed, 0x5c4ed, int64(t))))
		cl := cells[rng.Intn(len(cells))]
		plan = append(plan, Random(cl.topo, cl.proto, trialSeed(c.Seed, t), rng))
	}
	// Stamp per-trial fault seeds on the singles too (trial index = plan
	// position, so seeds survive budget-only changes for the sweep prefix).
	for t := range plan {
		if plan[t].Seed == 0 {
			plan[t].Seed = trialSeed(c.Seed, t)
		}
	}
	return plan, nil
}

// Search runs the budgeted sweep: evaluate the plan (in parallel, slotted
// by trial), then minimize each violating schedule sequentially in trial
// order, deduping by bug signature. The report is bit-identical across
// runs and across worker counts for a fixed config.
func Search(cfg Config) (Report, error) {
	if cfg.MinimizeBudget <= 0 {
		cfg.MinimizeBudget = 48
	}
	plan, err := cfg.Plan()
	if err != nil {
		return Report{}, err
	}
	rep := Report{Explored: len(plan)}
	verdicts := make([]Verdict, len(plan))
	errs := make([]error, len(plan))
	parallel.For(len(plan), cfg.Workers, func(i int) {
		verdicts[i], errs[i] = Evaluate(plan[i])
	})
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	seen := map[string]bool{}
	for t, v := range verdicts {
		if !v.Violating() {
			continue
		}
		rep.Violations++
		key := plan[t].Topo + "|" + plan[t].Proto + "|" + v.Label()
		if seen[key] {
			continue
		}
		seen[key] = true
		cfg.logf("trial %d: %s on %s/%s (%s) — minimizing", t, v.Label(),
			plan[t].Topo, plan[t].Proto, v.Detail)
		min, mv, evals, err := Minimize(plan[t], v, cfg.MinimizeBudget)
		if err != nil {
			return rep, fmt.Errorf("trial %d: %w", t, err)
		}
		rep.MinimizeEvals += evals
		rep.Found = append(rep.Found, Found{
			Trial: t, Original: plan[t], Minimal: min, Verdict: mv, MinEvals: evals,
		})
		cfg.logf("trial %d: minimized %d clause(s) → %d, %d evals", t,
			len(plan[t].Clauses), len(min.Clauses), evals)
	}
	return rep, nil
}
