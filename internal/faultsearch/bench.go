package faultsearch

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pim/internal/bench"
	"pim/internal/script"
)

func init() {
	bench.Register("faultsearch", bench.Spec{
		Summary: "fault-schedule search: replay the found corpus, sweep schedules, minimize counterexamples",
		Ledger:  "BENCH_faultsearch.json",
		Run:     runBench,
	})
}

// FaultSearchEntry is one appended record of the fault-schedule-search
// ledger (BENCH_faultsearch.json).
type FaultSearchEntry struct {
	bench.LedgerHeader
	Seed              int64 `json:"seed"`
	Budget            int   `json:"budget"`
	SchedulesExplored int   `json:"schedules_explored"`
	ViolationsFound   int   `json:"violations_found"`
	DistinctBugs      int   `json:"distinct_bugs"`
	// MinScheduleSize is the clause count of the smallest minimized
	// counterexample this run produced (0 = nothing found).
	MinScheduleSize int `json:"min_schedule_size"`
	MinimizeEvals   int `json:"minimize_evals"`
	// CorpusReplayed counts the scenarios/found/ files whose recorded
	// verdicts were re-verified before the sweep ran.
	CorpusReplayed int `json:"corpus_replayed"`
	CorpusEmitted  int `json:"corpus_emitted"`
}

// replayCorpus re-runs every previously-found counterexample and verifies
// its recorded verdict still reproduces. The corpus holds both kinds of
// verdict: files asserting a live bug, and files whose expectations were
// flipped to pin a fix after the bug was repaired. Either way, a file that
// stops passing means the harness or a protocol drifted — both demand a
// human, so any regression refuses the whole run.
func replayCorpus(ctx *bench.Context, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pim"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		s, err := script.ParseFile(path)
		if err != nil {
			return 0, fmt.Errorf("%s: %v", path, err)
		}
		res, err := s.RunWith(script.RunConfig{})
		if err != nil {
			return 0, fmt.Errorf("%s: %v", path, err)
		}
		if !res.OK() {
			return 0, fmt.Errorf("%s: recorded verdict no longer reproduces: %v", path, res.Failures)
		}
		ctx.Printf("corpus ok   %s", path)
	}
	return len(paths), nil
}

// foundFileName derives the corpus filename for a minimized counterexample:
// one file per distinct bug signature, so re-running the search never
// duplicates the corpus.
func foundFileName(f Found) string {
	sig := f.Verdict.Label()
	for _, r := range []string{"/", ":", "+", " "} {
		sig = strings.ReplaceAll(sig, r, "-")
	}
	return fmt.Sprintf("%s-%s-%s.pim", f.Minimal.Topo, f.Minimal.Proto, sig)
}

func runBench(ctx *bench.Context) error {
	budget := ctx.Budget
	emit := ctx.EmitDir
	if ctx.Smoke {
		// Smoke still replays the whole corpus — that is the regression
		// gate — but sweeps a reduced budget and never writes scenarios.
		budget = 120
		emit = ""
	}

	replayed := 0
	if ctx.CorpusDir != "" {
		n, err := replayCorpus(ctx, ctx.CorpusDir)
		if err != nil {
			return fmt.Errorf("corpus replay FAILED, refusing to run: %w", err)
		}
		replayed = n
	}

	cfg := Config{
		Seed: ctx.Seed, Budget: budget, Workers: ctx.Workers,
		Log: func(format string, a ...interface{}) {
			ctx.Printf("faultsearch: "+format, a...)
		},
	}
	rep, err := Search(cfg)
	if err != nil {
		return err
	}
	ctx.Printf("faultsearch: explored %d schedules, %d violating, %d distinct bug(s), %d minimize evals",
		rep.Explored, rep.Violations, len(rep.Found), rep.MinimizeEvals)

	emitted := 0
	for _, f := range rep.Found {
		ctx.Printf("found: %s (%s)\n  minimal: %v", f.Verdict.Label(), f.Verdict.Detail, f.Minimal)
		if emit == "" {
			continue
		}
		path := filepath.Join(emit, foundFileName(f))
		if _, err := os.Stat(path); err == nil {
			ctx.Printf("  corpus already holds %s, not overwriting", path)
			continue
		}
		src, err := RenderFound(f.Minimal, f.Verdict, ctx.Seed, f.Trial)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(emit, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		ctx.Printf("  emitted %s", path)
		emitted++
	}

	ctx.Append(FaultSearchEntry{
		LedgerHeader:      ctx.Header(""),
		Seed:              ctx.Seed,
		Budget:            budget,
		SchedulesExplored: rep.Explored,
		ViolationsFound:   rep.Violations,
		DistinctBugs:      len(rep.Found),
		MinScheduleSize:   rep.MinScheduleSize(),
		MinimizeEvals:     rep.MinimizeEvals,
		CorpusReplayed:    replayed,
		CorpusEmitted:     emitted,
	})
	return nil
}
