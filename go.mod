module pim

go 1.22
